//! The cutting-tree Intersection Index (§IV-B of the paper) — randomized,
//! sampling-based implementation.
//!
//! Chazelle's deterministic (1/t)-cuttings give the textbook worst-case
//! guarantee but, as the paper itself notes, "are theoretical in nature and
//! involve large constant factors"; the paper therefore implements the index
//! with a probabilistic scheme (random sampling of intersection vertices and
//! a Voronoi partition of the sampled points).  We follow the same spirit
//! with a structure that is easier to make *exact*:
//!
//! * the space is partitioned by a binary tree of axis-aligned cuts;
//! * at every node the cut coordinate is chosen from a **random sample of the
//!   hyperplanes crossing the cell** (the median of their zero-crossings along
//!   the widest axis, measured through the cell centre), so regions dense in
//!   hyperplanes are cut more finely — the property the paper's Voronoi
//!   sampling is after;
//! * leaves store the hyperplanes crossing their cell, and queries gather
//!   candidates from the leaves intersecting the query box and filter them
//!   with an exact hyperplane-box test.
//!
//! Like [`crate::quadtree`], the tree is stored as a flat arena: fixed-size
//! node records in one `Vec` (the two children of a cut allocated as an
//! adjacent pair), leaf entries in one shared slab, cell corners in one flat
//! buffer, and the hyperplanes in a [`HyperplaneSlab`] so the
//! candidate-filter loop runs branchless over dense coefficient rows.
//! Steady-state probes through [`CuttingTree::query_into`] perform no heap
//! allocations.
//!
//! Unlike the quadtree, the depth of this tree is bounded by `max_depth`
//! *and* the data-adaptive median splits keep it balanced even when all
//! hyperplanes crowd into one corner of the root cell — which is exactly the
//! worst-case scenario of Figs. 13–14 where CUTTING must beat QUAD.  See
//! DESIGN.md §4 for the substitution rationale.

use eclipse_exec::ThreadPool;
use eclipse_persist::{enc, Cursor, PersistError, PersistResult};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::approx::EPS;
use crate::hyperplane::{Hyperplane, HyperplaneSlab};
use crate::point::BoundingBox;
use crate::quadtree::{crossing_sample, PARALLEL_BUILD_MIN_ENTRIES};
use crate::traverse::{classify_cell, CellRelation, TraversalScratch};

/// How the cut coordinate of an overfull cell is chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CutRule {
    /// The historical randomized rule: widest axis, median zero-crossing of
    /// a `sample_size`-element random sample of the cell's entries, jittered
    /// midpoint fallback.  The only rule format-v1 snapshots can carry.
    SampledCrossings,
    /// Deterministic adaptive rule: per axis, the in-cell zero-crossings of
    /// a strided entry sample (every entry up to 256, then every
    /// `len/256`-th) are measured; the cut axis is the one carrying the most
    /// crossings (ties to the wider extent, then the earlier axis) and the
    /// cut lands on the median crossing, so dense clusters are split through
    /// their mass instead of through a 16-element random guess.  Falls back
    /// to the widest axis's midpoint (no jitter) when nothing crosses the
    /// cell interior.  Consumes no randomness.
    MedianExtents,
}

impl CutRule {
    /// Stable one-byte snapshot tag.
    pub fn tag(self) -> u8 {
        match self {
            CutRule::SampledCrossings => 0,
            CutRule::MedianExtents => 1,
        }
    }

    /// Inverse of [`CutRule::tag`]; rejects unknown tags.
    pub fn from_tag(tag: u8) -> PersistResult<Self> {
        match tag {
            0 => Ok(CutRule::SampledCrossings),
            1 => Ok(CutRule::MedianExtents),
            other => Err(PersistError::Malformed(format!(
                "unknown cutting-tree cut-rule tag {other}"
            ))),
        }
    }
}

/// Construction parameters for [`CuttingTree`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CuttingTreeConfig {
    /// Maximum number of hyperplanes a leaf may hold before it is cut.
    pub max_capacity: usize,
    /// Hard depth limit.
    pub max_depth: usize,
    /// Number of hyperplanes sampled per node to choose the cut (the paper's
    /// parameter `t`; higher values give better balanced cuts at higher
    /// construction cost).
    pub sample_size: usize,
    /// Global budget on the number of tree nodes; once exhausted the
    /// remaining cells stay leaves (queries remain exact).
    pub max_nodes: usize,
    /// Global budget on the shared entry slab (every node stores the ids of
    /// the hyperplanes crossing its cell); see
    /// [`crate::quadtree::QuadtreeConfig::max_entries`].
    pub max_entries: usize,
    /// Seed for the sampling RNG so index construction is reproducible
    /// (consumed only under [`CutRule::SampledCrossings`]).
    pub seed: u64,
    /// How cut coordinates are chosen; see [`CutRule`].
    pub cut: CutRule,
}

impl Default for CuttingTreeConfig {
    fn default() -> Self {
        CuttingTreeConfig {
            max_capacity: 8,
            max_depth: 24,
            sample_size: 16,
            max_nodes: 1 << 16,
            max_entries: 1 << 22,
            seed: 0x5eed_cafe,
            cut: CutRule::MedianExtents,
        }
    }
}

/// Sentinel marking a leaf node (no children).
const NO_CHILD: u32 = u32::MAX;

/// One arena node: an axis-aligned cut with its two children allocated as an
/// adjacent pair (`low == high − 1`), or a leaf.
///
/// Every node — internal or leaf — records the ids of the hyperplanes
/// crossing its cell in the shared entry slab.  Leaves use the range for
/// exact candidate filtering; internal nodes use it to report their whole
/// (deduplicated) subtree in one pass when their cell is fully contained in
/// the query box.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
struct Node {
    /// Cut axis (meaningful for internal nodes only).
    axis: u32,
    /// Cut coordinate along `axis`.
    at: f64,
    /// Arena index of the low-side child; [`NO_CHILD`] for leaves.
    low: u32,
    /// Arena index of the high-side child.
    high: u32,
    /// This node's entry range in the shared slab.
    entries_start: u32,
    entries_end: u32,
}

/// A randomized cutting tree over hyperplanes in k-dimensional space, stored
/// as a flat arena.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CuttingTree {
    slab: HyperplaneSlab,
    nodes: Vec<Node>,
    /// Node cells, `2k` values per node: `k` lower corner coordinates, then
    /// `k` upper.
    cells: Vec<f64>,
    /// Shared entry slab: every leaf's hyperplane ids, concatenated.
    entries: Vec<u32>,
    root_cell: BoundingBox,
    config: CuttingTreeConfig,
    max_depth_reached: usize,
}

impl CuttingTree {
    /// Builds the index over `hyperplanes`, bounded by `cell`.
    pub fn build(hyperplanes: &[Hyperplane], cell: BoundingBox, config: CuttingTreeConfig) -> Self {
        Self::build_from_slab(HyperplaneSlab::from_hyperplanes(hyperplanes), cell, config)
    }

    /// Builds the index over an already-constructed hyperplane slab, taking
    /// ownership of it.  Serial; see
    /// [`CuttingTree::build_from_slab_with`] for the pool-aware entry point
    /// (both produce byte-identical arenas).
    pub fn build_from_slab(
        slab: HyperplaneSlab,
        cell: BoundingBox,
        config: CuttingTreeConfig,
    ) -> Self {
        Self::build_from_slab_with(slab, cell, config, None)
    }

    /// Builds the index, optionally spreading per-node entry partitioning
    /// over `pool`.
    ///
    /// Construction is level-synchronous breadth-first, in three phases per
    /// level: cut *selection* runs serially in frontier order, entry
    /// *partitioning* — the expensive sign tests — runs in parallel when a
    /// pool is supplied, and the *stitch* (entry recording, budget checks,
    /// adjacent child-pair allocation) replays the exact serial frontier
    /// order.  The arena, and therefore the snapshot encoding, is
    /// byte-identical for any thread count.
    ///
    /// Levels are processed in budget-sized *chunks* (each cut allocates
    /// exactly two children, so a chunk never overruns `max_nodes` by more
    /// than one node's pair): early levels form one chunk — maximal
    /// parallelism — while the level where a budget fills shrinks its chunks
    /// so at most one chunk of planning is thrown away.
    ///
    /// The random draws of [`CutRule::SampledCrossings`] are a pure function
    /// of `(config.seed, node id)` (`node_rng`): every node streams from
    /// its own splitmix64-derived RNG, so chunk boundaries, budget
    /// truncation, and thread count cannot shift the draws of any other
    /// node.  (The historical single sequential stream made the final chunk
    /// of budget-truncated builds depend on how many earlier nodes had
    /// consumed draws — arenas differed across `max_nodes`/`max_entries`
    /// settings even for the nodes both builds shared, and planning-only
    /// draws for cuts later discarded by the stitch shifted everything
    /// after them.)
    ///
    /// Level order also matters for the node budget: when `max_nodes` runs
    /// out, a BFS fills every region of the root cell to the same depth, so
    /// the partially built tree prunes uniformly instead of spending the
    /// whole budget on the first child's subtree.
    pub fn build_from_slab_with(
        slab: HyperplaneSlab,
        cell: BoundingBox,
        config: CuttingTreeConfig,
        pool: Option<&ThreadPool>,
    ) -> Self {
        let mut all = Vec::new();
        slab.filter_all_intersecting_into(cell.lo(), cell.hi(), &mut all);
        let mut tree = CuttingTree {
            slab,
            nodes: Vec::new(),
            cells: Vec::new(),
            entries: Vec::new(),
            root_cell: cell.clone(),
            config,
            max_depth_reached: 0,
        };
        tree.alloc_node(&cell);
        let mut frontier: Vec<(u32, Vec<u32>)> = vec![(0, all)];
        let mut depth = 0usize;
        while !frontier.is_empty() {
            tree.max_depth_reached = tree.max_depth_reached.max(depth);
            let depth_open = depth < tree.config.max_depth;
            let mut next = Vec::new();
            let mut i = 0usize;
            while i < frontier.len() {
                if !depth_open
                    || tree.nodes.len() >= tree.config.max_nodes
                    || tree.entries.len() >= tree.config.max_entries
                {
                    // No node from here on can split (depth and budget
                    // exhaustion only ever grow); record the remaining entry
                    // lists and finish the level without planning them.
                    for (idx, node_entries) in &frontier[i..] {
                        tree.record_entries(*idx, node_entries);
                    }
                    break;
                }
                // Chunk sizing: each cut allocates exactly two children.
                let node_room = (tree.config.max_nodes - tree.nodes.len()) / 2;
                let entry_room = tree.config.max_entries - tree.entries.len();
                let mut end = i;
                let mut chunk_entries = 0usize;
                while end < frontier.len()
                    && end - i < node_room.max(1)
                    && chunk_entries < entry_room
                {
                    chunk_entries += frontier[end].1.len();
                    end += 1;
                }
                // Phase A — cut selection, serial in frontier order; the
                // [`CutRule::SampledCrossings`] draws come from a per-node
                // RNG ([`node_rng`]), so neither chunking nor budget state
                // can shift another node's sample.
                let cuts: Vec<Option<(usize, f64)>> = frontier[i..end]
                    .iter()
                    .map(|(idx, node_entries)| {
                        if node_entries.len() <= tree.config.max_capacity {
                            return None;
                        }
                        let cell = tree.node_cell(*idx);
                        match tree.config.cut {
                            CutRule::SampledCrossings => {
                                let mut rng = node_rng(tree.config.seed, *idx);
                                choose_cut(&tree.slab, &cell, node_entries, &tree.config, &mut rng)
                            }
                            CutRule::MedianExtents => {
                                choose_cut_median(&tree.slab, &cell, node_entries)
                            }
                        }
                    })
                    .collect();
                // Phase B — partition the entries of every cut node, in
                // parallel when the chunk carries enough work.
                let jobs: Vec<CutJob> = frontier[i..end].iter().zip(cuts).collect();
                let plans: Vec<Option<CutPlan>> = {
                    let tree = &tree;
                    let slab = &tree.slab;
                    let plan_one = |&((idx, node_entries), cut): &CutJob| -> Option<CutPlan> {
                        let (axis, at) = cut?;
                        let cell = tree.node_cell(*idx);
                        let (low_cell, high_cell) = cell.split_at(axis, at);
                        // Guard against non-progress cuts (degenerate halves).
                        if low_cell.extent(axis) <= EPS || high_cell.extent(axis) <= EPS {
                            return None;
                        }
                        let mut low_entries = Vec::new();
                        slab.filter_intersecting_into(
                            node_entries,
                            low_cell.lo(),
                            low_cell.hi(),
                            &mut low_entries,
                        );
                        let mut high_entries = Vec::new();
                        slab.filter_intersecting_into(
                            node_entries,
                            high_cell.lo(),
                            high_cell.hi(),
                            &mut high_entries,
                        );
                        // If the cut failed to separate anything, stop to
                        // avoid infinite recursion (every hyperplane crosses
                        // both halves).
                        if low_entries.len() == node_entries.len()
                            && high_entries.len() == node_entries.len()
                        {
                            return None;
                        }
                        Some(CutPlan {
                            axis,
                            at,
                            low_cell,
                            high_cell,
                            low_entries,
                            high_entries,
                        })
                    };
                    let cut_entries: usize = jobs
                        .iter()
                        .filter(|(_, cut)| cut.is_some())
                        .map(|((_, e), _)| e.len())
                        .sum();
                    match pool {
                        Some(pool)
                            if pool.threads() > 1 && cut_entries >= PARALLEL_BUILD_MIN_ENTRIES =>
                        {
                            pool.par_map(&jobs, plan_one)
                        }
                        _ => jobs.iter().map(plan_one).collect(),
                    }
                };
                // Phase C — stitch, serially and in frontier order
                // (identical to the historical one-node-at-a-time BFS pop
                // order).  The checks below observe the live arena exactly
                // as the serial builder did.
                for (j, plan) in plans.into_iter().enumerate() {
                    let (idx, node_entries) = &frontier[i + j];
                    // Every node records its (deduplicated) entry list, so
                    // queries can report a fully contained subtree straight
                    // from its root.
                    tree.record_entries(*idx, node_entries);
                    if node_entries.len() <= tree.config.max_capacity
                        || depth >= tree.config.max_depth
                        || tree.nodes.len() >= tree.config.max_nodes
                        || tree.entries.len() >= tree.config.max_entries
                    {
                        continue;
                    }
                    let Some(plan) = plan else { continue };
                    let low = tree.nodes.len() as u32;
                    tree.alloc_node(&plan.low_cell);
                    tree.alloc_node(&plan.high_cell);
                    let node = &mut tree.nodes[*idx as usize];
                    node.axis = plan.axis as u32;
                    node.at = plan.at;
                    node.low = low;
                    node.high = low + 1;
                    next.push((low, plan.low_entries));
                    next.push((low + 1, plan.high_entries));
                }
                i = end;
            }
            frontier = next;
            depth += 1;
        }
        tree
    }

    /// Appends a leaf placeholder for `cell` to the arena.
    fn alloc_node(&mut self, cell: &BoundingBox) {
        self.nodes.push(Node {
            axis: 0,
            at: 0.0,
            low: NO_CHILD,
            high: NO_CHILD,
            entries_start: 0,
            entries_end: 0,
        });
        self.cells.extend_from_slice(cell.lo());
        self.cells.extend_from_slice(cell.hi());
    }

    /// Stores a node's entries into the shared slab and records the range.
    fn record_entries(&mut self, idx: u32, node_entries: &[u32]) {
        let start = self.entries.len() as u32;
        self.entries.extend_from_slice(node_entries);
        let node = &mut self.nodes[idx as usize];
        node.entries_start = start;
        node.entries_end = self.entries.len() as u32;
    }

    /// Reconstructs a node's cell as an owned box (build/diagnostics only).
    fn node_cell(&self, idx: u32) -> BoundingBox {
        let k = self.root_cell.dim();
        let base = idx as usize * 2 * k;
        BoundingBox::new(
            self.cells[base..base + k].to_vec(),
            self.cells[base + k..base + 2 * k].to_vec(),
        )
    }

    /// The configuration the tree was built with.
    pub fn config(&self) -> CuttingTreeConfig {
        self.config
    }

    /// Number of hyperplanes the tree was built over.
    pub fn len(&self) -> usize {
        self.slab.len()
    }

    /// `true` when the tree indexes no hyperplanes.
    pub fn is_empty(&self) -> bool {
        self.slab.is_empty()
    }

    /// Total number of tree nodes (diagnostic).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of entry-slab slots (diagnostic: the arena's dominant
    /// memory cost; every node stores the ids crossing its cell).
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Deepest level created during construction (diagnostic).
    pub fn depth(&self) -> usize {
        self.max_depth_reached
    }

    /// Heap bytes owned by the arena: the hyperplane slab plus the node,
    /// cell-corner and entry buffers (counted at capacity) and the root
    /// cell's corners.  Exact up to allocator headers; used by the serving
    /// layer's memory accounting.
    pub fn heap_bytes(&self) -> usize {
        self.slab.heap_bytes()
            + self.nodes.capacity() * std::mem::size_of::<Node>()
            + self.cells.capacity() * std::mem::size_of::<f64>()
            + self.entries.capacity() * std::mem::size_of::<u32>()
            + self.root_cell.heap_bytes()
    }

    /// The root cell.
    pub fn root_cell(&self) -> &BoundingBox {
        &self.root_cell
    }

    /// The hyperplane rows the tree indexes.
    pub fn slab(&self) -> &HyperplaneSlab {
        &self.slab
    }

    /// Returns the indices of all hyperplanes intersecting `query`, in
    /// ascending order and without duplicates.
    ///
    /// `hyperplanes` must be the same slice the tree was built from (the tree
    /// owns a slab copy of the rows; the slice is only length-checked).
    /// Allocates fresh scratch per call — repeated probing should use
    /// [`CuttingTree::query_into`].
    ///
    /// # Panics
    /// Panics if `hyperplanes.len()` differs from the construction-time count.
    pub fn query(&self, hyperplanes: &[Hyperplane], query: &BoundingBox) -> Vec<usize> {
        assert_eq!(
            hyperplanes.len(),
            self.slab.len(),
            "query must use the hyperplane slice the index was built from"
        );
        let mut scratch = TraversalScratch::new();
        let mut out = Vec::new();
        self.query_into(query.lo(), query.hi(), &mut scratch, &mut out);
        out
    }

    /// The allocation-free query: appends the indices of all hyperplanes
    /// intersecting the box `[qlo, qhi]` to `out` (cleared first), in
    /// ascending order and without duplicates.  `scratch` is reused at its
    /// high-water capacity across probes.
    ///
    /// # Panics
    /// Panics if the corner slices do not match the root cell dimensionality.
    pub fn query_into(
        &self,
        qlo: &[f64],
        qhi: &[f64],
        scratch: &mut TraversalScratch,
        out: &mut Vec<usize>,
    ) {
        out.clear();
        self.mark_hits(qlo, qhi, scratch);
        scratch.drain_into(out);
    }

    /// The count-only query: the number of hyperplanes intersecting the box
    /// `[qlo, qhi]`, computed with the same traversal (contained cells report
    /// their deduplicated subtree without a single sign test) but swept out
    /// of the visited bitmap as a popcount — no id is ever materialized, so
    /// the query performs no heap allocations at steady state.
    ///
    /// # Panics
    /// Panics if the corner slices do not match the root cell dimensionality.
    pub fn count_in_box(&self, qlo: &[f64], qhi: &[f64], scratch: &mut TraversalScratch) -> usize {
        self.mark_hits(qlo, qhi, scratch);
        scratch.drain_count()
    }

    /// Shared traversal of [`CuttingTree::query_into`] and
    /// [`CuttingTree::count_in_box`]: marks every hyperplane intersecting the
    /// box in the scratch's visited bitmap.
    fn mark_hits(&self, qlo: &[f64], qhi: &[f64], scratch: &mut TraversalScratch) {
        assert_eq!(
            qlo.len(),
            self.root_cell.dim(),
            "query dimensionality mismatch"
        );
        assert_eq!(
            qhi.len(),
            self.root_cell.dim(),
            "query dimensionality mismatch"
        );
        scratch.begin(self.slab.len());
        scratch.stack.push(0);
        while let Some(idx) = scratch.stack.pop() {
            let idx = idx as usize;
            let node = self.nodes[idx];
            match classify_cell(&self.cells, idx, qlo, qhi) {
                CellRelation::Disjoint => {}
                CellRelation::Contained => {
                    // The cell lies inside the query box, so every hyperplane
                    // crossing the cell crosses the box: report this node's
                    // deduplicated entry list without descending or running a
                    // single sign test.
                    for &e in &self.entries[node.entries_start as usize..node.entries_end as usize]
                    {
                        scratch.mark(e as usize);
                    }
                }
                CellRelation::Overlaps if node.low == NO_CHILD => {
                    // Gather the not-yet-marked entries and sign-test them
                    // four at a time through the batched kernel; the buffers
                    // are taken out of the scratch for the duration (no
                    // allocation at steady state, same bit-exact decisions).
                    let mut pending = std::mem::take(&mut scratch.pending);
                    let mut filtered = std::mem::take(&mut scratch.filtered);
                    pending.clear();
                    pending.extend(
                        self.entries[node.entries_start as usize..node.entries_end as usize]
                            .iter()
                            .copied()
                            .filter(|&e| !scratch.is_marked(e as usize)),
                    );
                    filtered.clear();
                    self.slab
                        .filter_intersecting_into(&pending, qlo, qhi, &mut filtered);
                    for &e in &filtered {
                        scratch.mark(e as usize);
                    }
                    scratch.pending = pending;
                    scratch.filtered = filtered;
                }
                CellRelation::Overlaps => {
                    // Descend through the cut plane: a child strictly on the
                    // far side of the cut cannot intersect the query box (EPS
                    // slack keeps the test conservative; the per-node cell
                    // check prunes any survivors exactly).
                    let axis = node.axis as usize;
                    if qlo[axis] <= node.at + EPS {
                        scratch.stack.push(node.low);
                    }
                    if qhi[axis] >= node.at - EPS {
                        scratch.stack.push(node.high);
                    }
                }
            }
        }
    }

    /// Appends the tree's snapshot encoding: construction config (including
    /// the sampling seed, so the provenance of the cuts is preserved), root
    /// cell, reached depth, the hyperplane slab, then the three arena
    /// buffers.  Construction is deterministic for a seed (and for any
    /// thread count), so the same input data and config always produce the
    /// same bytes.
    ///
    /// Always writes the current container format; the cut-rule tag after
    /// the seed is the format-v2 addition.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        enc::put_usize(out, self.config.max_capacity);
        enc::put_usize(out, self.config.max_depth);
        enc::put_usize(out, self.config.sample_size);
        enc::put_usize(out, self.config.max_nodes);
        enc::put_usize(out, self.config.max_entries);
        enc::put_u64(out, self.config.seed);
        enc::put_u8(out, self.config.cut.tag());
        self.root_cell.encode_into(out);
        enc::put_usize(out, self.max_depth_reached);
        self.slab.encode_into(out);
        enc::put_usize(out, self.nodes.len());
        for node in &self.nodes {
            enc::put_u32(out, node.axis);
            enc::put_f64(out, node.at);
            enc::put_u32(out, node.low);
            enc::put_u32(out, node.high);
            enc::put_u32(out, node.entries_start);
            enc::put_u32(out, node.entries_end);
        }
        // `cells` holds exactly 2k values per node, so no count is stored.
        for &c in &self.cells {
            enc::put_f64(out, c);
        }
        enc::put_usize(out, self.entries.len());
        for &e in &self.entries {
            enc::put_u32(out, e);
        }
    }

    /// Decodes a tree previously written by [`CuttingTree::encode_into`],
    /// consuming exactly its bytes from `cur` and re-validating every arena
    /// invariant the query loop relies on (counts bounded by the remaining
    /// bytes, children strictly forward so traversal terminates, cut axes
    /// inside the ambient dimensionality, entry ranges and ids in bounds).
    ///
    /// # Errors
    /// A typed [`PersistError`] for every defect; arbitrary input never
    /// panics.
    pub fn decode(cur: &mut Cursor<'_>) -> PersistResult<Self> {
        Self::decode_versioned(cur, eclipse_persist::FORMAT_VERSION)
    }

    /// Version-aware decode: format-v1 payloads predate [`CutRule`] (no tag
    /// byte; every v1 tree was built with the sampled-crossings rule), v2
    /// carries the rule tag.  Callers reading a snapshot container pass
    /// `SnapshotReader::version`.
    pub fn decode_versioned(cur: &mut Cursor<'_>, version: u32) -> PersistResult<Self> {
        let config = CuttingTreeConfig {
            max_capacity: cur.usize64()?,
            max_depth: cur.usize64()?,
            sample_size: cur.usize64()?,
            max_nodes: cur.usize64()?,
            max_entries: cur.usize64()?,
            seed: cur.u64()?,
            cut: if version >= 2 {
                CutRule::from_tag(cur.u8()?)?
            } else {
                CutRule::SampledCrossings
            },
        };
        let root_cell = BoundingBox::decode(cur)?;
        let max_depth_reached = cur.usize64()?;
        let slab = HyperplaneSlab::decode(cur)?;
        let k = root_cell.dim();
        if slab.dim() != k {
            return Err(PersistError::Malformed(format!(
                "slab dimensionality {} does not match the {k}-dimensional root cell",
                slab.dim()
            )));
        }
        let node_count = cur.count(24)?;
        if node_count == 0 {
            return Err(PersistError::Malformed(
                "a cutting-tree arena needs at least its root node".to_string(),
            ));
        }
        let mut nodes = Vec::with_capacity(node_count);
        for _ in 0..node_count {
            nodes.push(Node {
                axis: cur.u32()?,
                at: cur.f64()?,
                low: cur.u32()?,
                high: cur.u32()?,
                entries_start: cur.u32()?,
                entries_end: cur.u32()?,
            });
        }
        let cells = cur.f64_vec(node_count.checked_mul(2 * k).ok_or_else(|| {
            PersistError::Malformed(format!("{node_count} cells of dimension {k} overflow"))
        })?)?;
        let entry_count = cur.count(4)?;
        let entries = cur.u32_vec(entry_count)?;
        if let Some(&bad) = entries.iter().find(|&&e| e as usize >= slab.len()) {
            return Err(PersistError::Malformed(format!(
                "entry id {bad} out of range for {} hyperplanes",
                slab.len()
            )));
        }
        for (idx, node) in nodes.iter().enumerate() {
            if node.entries_start > node.entries_end || node.entries_end as usize > entries.len() {
                return Err(PersistError::Malformed(format!(
                    "node {idx} entry range {}..{} escapes the {}-slot entry slab",
                    node.entries_start,
                    node.entries_end,
                    entries.len()
                )));
            }
            if node.low == NO_CHILD {
                if node.high != NO_CHILD {
                    return Err(PersistError::Malformed(format!(
                        "node {idx} is half-leaf (low unset, high {})",
                        node.high
                    )));
                }
            } else if node.axis as usize >= k
                || node.low as usize <= idx
                || node.high as usize <= idx
                || node.low as usize >= node_count
                || node.high as usize >= node_count
            {
                // Children must point strictly forward (the builder allocates
                // them after their parent), which is also what guarantees the
                // iterative traversal terminates on decoded arenas; the cut
                // axis must index the ambient space or the descent would
                // read out of bounds.
                return Err(PersistError::Malformed(format!(
                    "node {idx} cut (axis {}, children {}/{}) is invalid for \
                     {node_count} nodes of dimension {k}",
                    node.axis, node.low, node.high
                )));
            }
        }
        Ok(CuttingTree {
            slab,
            nodes,
            cells,
            entries,
            root_cell,
            config,
            max_depth_reached,
        })
    }
}

/// One planning job: a frontier node (arena index + entry ids) paired with
/// its pre-selected cut, if the node is to be split at all.
type CutJob<'a> = (&'a (u32, Vec<u32>), Option<(usize, f64)>);

/// A planned cut of one overfull node: the chosen cut, the two child cells,
/// and the entry subsets crossing each.  Partitioning is a pure function of
/// (slab, cell, cut, entries), which is what lets it run on any thread while
/// cut selection and stitching stay serial and deterministic.
struct CutPlan {
    axis: usize,
    at: f64,
    low_cell: BoundingBox,
    high_cell: BoundingBox,
    low_entries: Vec<u32>,
    high_entries: Vec<u32>,
}

/// The deterministic [`CutRule::MedianExtents`] cut: measures the in-cell
/// zero-crossings of a strided entry sample along every axis (through the
/// cell centre — see [`crate::quadtree::crossing_sample`]), cuts the axis
/// carrying the most crossings — ties broken towards the wider extent, then
/// the earlier axis — at their median.  With no
/// interior crossings at all, falls back to the midpoint of the widest axis
/// (no jitter; a fruitless midpoint cut is caught by the builder's
/// no-progress guard, so termination does not need it).  Returns `None` only
/// when the cell is degenerate on every axis.
fn choose_cut_median(
    slab: &HyperplaneSlab,
    cell: &BoundingBox,
    entries: &[u32],
) -> Option<(usize, f64)> {
    let k = cell.dim();
    let center = cell.center();
    let mut crossings: Vec<Vec<f64>> = vec![Vec::new(); k];
    for i in crossing_sample(entries) {
        let row = slab.coeffs_row(i as usize);
        let offset = slab.offset(i as usize);
        for axis in 0..k {
            let coeff = row[axis];
            if coeff.abs() <= EPS {
                continue;
            }
            let mut rest = 0.0;
            for (j, c) in row.iter().enumerate() {
                if j != axis {
                    rest += c * center.coord(j);
                }
            }
            let x = -(rest + offset) / coeff;
            if x > cell.lo()[axis] + EPS && x < cell.hi()[axis] - EPS {
                crossings[axis].push(x);
            }
        }
    }
    let mut best: Option<usize> = None;
    for axis in 0..k {
        if crossings[axis].is_empty() {
            continue;
        }
        let better = match best {
            None => true,
            Some(b) => {
                crossings[axis].len() > crossings[b].len()
                    || (crossings[axis].len() == crossings[b].len()
                        && cell.extent(axis) > cell.extent(b))
            }
        };
        if better {
            best = Some(axis);
        }
    }
    if let Some(axis) = best {
        let xs = &mut crossings[axis];
        let mid = xs.len() / 2;
        let at = *xs.select_nth_unstable_by(mid, |a, b| a.total_cmp(b)).1;
        return Some((axis, at));
    }
    // No interior crossing anywhere: midpoint of the widest axis.
    let axis = (0..k).max_by(|&a, &b| cell.extent(a).total_cmp(&cell.extent(b)))?;
    if cell.extent(axis) <= EPS {
        return None;
    }
    Some((axis, 0.5 * (cell.lo()[axis] + cell.hi()[axis])))
}

/// The [`CutRule::SampledCrossings`] RNG of one node: seeded purely from
/// `(config seed, arena node id)` via splitmix64, so a node's draws are
/// reproducible no matter how the build was chunked, how much of a budget
/// was left, or how many other nodes drew before it.  Node ids are
/// allocated in deterministic BFS stitch order, so two builds that agree
/// on a node's id agree on its sample.
fn node_rng(seed: u64, node: u32) -> StdRng {
    StdRng::seed_from_u64(splitmix64(
        seed ^ u64::from(node).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    ))
}

/// SplitMix64: a tiny, well-distributed bijection — the standard way to
/// spread correlated seeds (`seed ^ f(node)`) across the u64 space before
/// feeding a stream RNG.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Chooses an axis and a cut coordinate for a cell under
/// [`CutRule::SampledCrossings`].
///
/// The axis is the widest axis of the cell; the coordinate is the median of
/// the zero-crossings (along that axis, through the cell centre) of a random
/// sample of the hyperplanes crossing the cell.  Falls back to the cell
/// midpoint when no sampled hyperplane yields a usable crossing.
fn choose_cut(
    slab: &HyperplaneSlab,
    cell: &BoundingBox,
    entries: &[u32],
    config: &CuttingTreeConfig,
    rng: &mut StdRng,
) -> Option<(usize, f64)> {
    let k = cell.dim();
    // Pick the widest splittable axis.
    let axis = (0..k).max_by(|&a, &b| cell.extent(a).total_cmp(&cell.extent(b)))?;
    if cell.extent(axis) <= EPS {
        return None;
    }

    let sample_count = config.sample_size.min(entries.len()).max(1);
    let sample: Vec<u32> = if entries.len() <= sample_count {
        entries.to_vec()
    } else {
        entries
            .choose_multiple(rng, sample_count)
            .copied()
            .collect()
    };

    let center = cell.center();
    let mut crossings: Vec<f64> = Vec::with_capacity(sample.len());
    for &i in &sample {
        let row = slab.coeffs_row(i as usize);
        let coeff = row[axis];
        if coeff.abs() <= EPS {
            continue;
        }
        // Solve h(x) = 0 with all coordinates fixed at the cell centre except
        // `axis`.
        let mut rest = 0.0;
        for (j, c) in row.iter().enumerate() {
            if j != axis {
                rest += c * center.coord(j);
            }
        }
        let x = -(rest + slab.offset(i as usize)) / coeff;
        if x > cell.lo()[axis] + EPS && x < cell.hi()[axis] - EPS {
            crossings.push(x);
        }
    }

    let at = if crossings.is_empty() {
        // No informative crossing in the sample: fall back to the midpoint,
        // possibly jittered slightly so repeated fallbacks still make progress.
        let mid = 0.5 * (cell.lo()[axis] + cell.hi()[axis]);
        let jitter = cell.extent(axis) * rng.gen_range(-0.05..0.05);
        (mid + jitter).clamp(cell.lo()[axis], cell.hi()[axis])
    } else {
        crossings.sort_by(|a, b| a.total_cmp(b));
        crossings[crossings.len() / 2]
    };
    Some((axis, at))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(a: f64, b: f64, c: f64) -> Hyperplane {
        Hyperplane::new(vec![a, b], c)
    }

    fn unit_box() -> BoundingBox {
        BoundingBox::new(vec![0.0, 0.0], vec![1.0, 1.0])
    }

    fn brute_force(hs: &[Hyperplane], q: &BoundingBox) -> Vec<usize> {
        (0..hs.len()).filter(|&i| hs[i].intersects_box(q)).collect()
    }

    #[test]
    fn build_and_query_small() {
        let hs = vec![
            line(1.0, -1.0, 0.0),
            line(0.0, 1.0, -0.25),
            line(0.0, 1.0, -0.75),
            line(1.0, 1.0, -10.0),
        ];
        let tree = CuttingTree::build(&hs, unit_box(), CuttingTreeConfig::default());
        assert_eq!(tree.len(), 4);
        assert_eq!(tree.root_cell(), &unit_box());
        assert_eq!(tree.slab().len(), 4);
        let q = BoundingBox::new(vec![0.0, 0.0], vec![0.5, 0.5]);
        assert_eq!(tree.query(&hs, &q), brute_force(&hs, &q));
    }

    #[test]
    fn query_agrees_with_brute_force_randomized() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(1234);
        let hs: Vec<Hyperplane> = (0..300)
            .map(|_| {
                line(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                )
            })
            .collect();
        let root = BoundingBox::new(vec![-1.0, -1.0], vec![1.0, 1.0]);
        let tree = CuttingTree::build(
            &hs,
            root,
            CuttingTreeConfig {
                max_capacity: 6,
                ..CuttingTreeConfig::default()
            },
        );
        for _ in 0..25 {
            let x0 = rng.gen_range(-1.0..0.9);
            let y0 = rng.gen_range(-1.0..0.9);
            let q = BoundingBox::new(
                vec![x0, y0],
                vec![x0 + rng.gen_range(0.01..0.1), y0 + rng.gen_range(0.01..0.1)],
            );
            assert_eq!(tree.query(&hs, &q), brute_force(&hs, &q));
        }
    }

    #[test]
    fn three_dimensional_cutting_tree() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let hs: Vec<Hyperplane> = (0..150)
            .map(|_| {
                Hyperplane::new(
                    vec![
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                    ],
                    rng.gen_range(-0.5..0.5),
                )
            })
            .collect();
        let root = BoundingBox::new(vec![-1.0, -1.0, -1.0], vec![1.0, 1.0, 1.0]);
        let tree = CuttingTree::build(&hs, root, CuttingTreeConfig::default());
        for _ in 0..10 {
            let lo: Vec<f64> = (0..3).map(|_| rng.gen_range(-1.0..0.8)).collect();
            let hi: Vec<f64> = lo.iter().map(|l| l + rng.gen_range(0.05..0.2)).collect();
            let q = BoundingBox::new(lo, hi);
            assert_eq!(tree.query(&hs, &q), brute_force(&hs, &q));
        }
    }

    #[test]
    fn clustered_lines_stay_balanced() {
        // The same clustered worst case that makes the quadtree degenerate:
        // the cutting tree's sampled-median cuts keep the depth far below the
        // hyperplane count.
        let hs: Vec<Hyperplane> = (0..256)
            .map(|i| line(1.0, -1.0, -1e-4 * i as f64))
            .collect();
        let cfg = CuttingTreeConfig {
            max_capacity: 4,
            max_depth: 40,
            ..CuttingTreeConfig::default()
        };
        let tree = CuttingTree::build(&hs, unit_box(), cfg);
        assert!(
            tree.depth() <= 20,
            "cutting tree should stay shallow on clustered input, got {}",
            tree.depth()
        );
        let q = BoundingBox::new(vec![0.4, 0.4], vec![0.6, 0.6]);
        assert_eq!(tree.query(&hs, &q), brute_force(&hs, &q));
    }

    #[test]
    fn construction_is_deterministic_for_a_seed() {
        let hs: Vec<Hyperplane> = (0..50).map(|i| line(1.0, -0.5, -0.01 * i as f64)).collect();
        let a = CuttingTree::build(&hs, unit_box(), CuttingTreeConfig::default());
        let b = CuttingTree::build(&hs, unit_box(), CuttingTreeConfig::default());
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.depth(), b.depth());
        let q = BoundingBox::new(vec![0.1, 0.1], vec![0.3, 0.3]);
        assert_eq!(a.query(&hs, &q), b.query(&hs, &q));
    }

    #[test]
    fn query_into_reuses_scratch_across_probes() {
        let hs: Vec<Hyperplane> = (0..80).map(|i| line(1.0, -0.7, -0.01 * i as f64)).collect();
        let tree = CuttingTree::build(&hs, unit_box(), CuttingTreeConfig::default());
        let mut scratch = TraversalScratch::new();
        let mut out = Vec::new();
        for (x0, y0, side) in [(0.0, 0.0, 0.4), (0.5, 0.5, 0.3), (0.9, 0.1, 0.05)] {
            let q = BoundingBox::new(vec![x0, y0], vec![x0 + side, y0 + side]);
            tree.query_into(q.lo(), q.hi(), &mut scratch, &mut out);
            assert_eq!(out, brute_force(&hs, &q), "box {q:?}");
        }
    }

    #[test]
    fn empty_tree_queries_cleanly() {
        let hs: Vec<Hyperplane> = Vec::new();
        let tree = CuttingTree::build(&hs, unit_box(), CuttingTreeConfig::default());
        assert!(tree.is_empty());
        assert_eq!(tree.query(&hs, &unit_box()), Vec::<usize>::new());
        let mut scratch = TraversalScratch::new();
        assert_eq!(tree.count_in_box(&[0.0, 0.0], &[1.0, 1.0], &mut scratch), 0);
    }

    #[test]
    fn count_in_box_matches_query_cardinality() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(44);
        let hs: Vec<Hyperplane> = (0..250)
            .map(|_| {
                line(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                )
            })
            .collect();
        let root = BoundingBox::new(vec![-1.0, -1.0], vec![1.0, 1.0]);
        let tree = CuttingTree::build(
            &hs,
            root.clone(),
            CuttingTreeConfig {
                max_capacity: 6,
                ..CuttingTreeConfig::default()
            },
        );
        let mut scratch = TraversalScratch::new();
        for q in std::iter::once(root).chain((0..25).map(|_| {
            let x0 = rng.gen_range(-1.0..0.8);
            let y0 = rng.gen_range(-1.0..0.8);
            BoundingBox::new(
                vec![x0, y0],
                vec![x0 + rng.gen_range(0.01..0.2), y0 + rng.gen_range(0.01..0.2)],
            )
        })) {
            let ids = tree.query(&hs, &q);
            assert_eq!(
                tree.count_in_box(q.lo(), q.hi(), &mut scratch),
                ids.len(),
                "box {q:?}"
            );
            let mut out = Vec::new();
            tree.query_into(q.lo(), q.hi(), &mut scratch, &mut out);
            assert_eq!(out, ids, "box {q:?}");
        }
    }

    #[test]
    fn snapshot_round_trips_byte_exactly() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(2027);
        let hs: Vec<Hyperplane> = (0..200)
            .map(|_| {
                line(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                )
            })
            .collect();
        let root = BoundingBox::new(vec![-1.0, -1.0], vec![1.0, 1.0]);
        let tree = CuttingTree::build(
            &hs,
            root,
            CuttingTreeConfig {
                max_capacity: 5,
                ..CuttingTreeConfig::default()
            },
        );
        let mut bytes = Vec::new();
        tree.encode_into(&mut bytes);
        let mut cur = Cursor::new(&bytes);
        let back = CuttingTree::decode(&mut cur).unwrap();
        cur.finish().unwrap();
        assert_eq!(back.config(), tree.config());
        assert_eq!(back.root_cell(), tree.root_cell());
        assert_eq!(back.node_count(), tree.node_count());
        assert_eq!(back.entry_count(), tree.entry_count());
        assert_eq!(back.depth(), tree.depth());
        for _ in 0..20 {
            let x0 = rng.gen_range(-1.0..0.8);
            let y0 = rng.gen_range(-1.0..0.8);
            let q = BoundingBox::new(
                vec![x0, y0],
                vec![x0 + rng.gen_range(0.01..0.3), y0 + rng.gen_range(0.01..0.3)],
            );
            assert_eq!(back.query(&hs, &q), tree.query(&hs, &q), "box {q:?}");
        }
        let mut again = Vec::new();
        back.encode_into(&mut again);
        assert_eq!(again, bytes);
    }

    #[test]
    fn snapshot_decode_is_total_on_hostile_input() {
        // Kept deliberately tiny: the truncation sweep below decodes every
        // proper prefix, which is quadratic in the snapshot size.  Horizontal
        // lines separate cleanly under axis-aligned cuts, so the root
        // subdivides even at this size.
        let hs: Vec<Hyperplane> = (0..8).map(|i| line(0.0, 1.0, -0.1 * i as f64)).collect();
        let tree = CuttingTree::build(
            &hs,
            unit_box(),
            CuttingTreeConfig {
                max_capacity: 2,
                ..CuttingTreeConfig::default()
            },
        );
        let mut bytes = Vec::new();
        tree.encode_into(&mut bytes);
        for cut in 0..bytes.len() {
            assert!(
                CuttingTree::decode(&mut Cursor::new(&bytes[..cut])).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
        // Backward-pointing children (a traversal cycle) are refused.
        let mut evil = Vec::new();
        let evil_tree = {
            let mut t = tree.clone();
            assert!(t.nodes[0].low != NO_CHILD, "root subdivided");
            t.nodes[0].low = 0;
            t
        };
        evil_tree.encode_into(&mut evil);
        assert!(matches!(
            CuttingTree::decode(&mut Cursor::new(&evil)),
            Err(PersistError::Malformed(m)) if m.contains("invalid")
        ));
        // A cut axis outside the ambient space is refused (the descent would
        // index the query corners out of bounds).
        let mut evil = Vec::new();
        let evil_tree = {
            let mut t = tree.clone();
            t.nodes[0].axis = 7;
            t
        };
        evil_tree.encode_into(&mut evil);
        assert!(matches!(
            CuttingTree::decode(&mut Cursor::new(&evil)),
            Err(PersistError::Malformed(_))
        ));
    }

    #[test]
    fn median_rule_agrees_with_brute_force_and_tracks_clusters() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(555);
        // Clustered diagonals plus random lines and degenerate rows.
        let mut hs: Vec<Hyperplane> = (0..128)
            .map(|i| line(1.0, -1.0, -1e-4 * i as f64))
            .collect();
        for _ in 0..64 {
            hs.push(line(
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
            ));
        }
        hs.push(Hyperplane::new(vec![0.0, 0.0], 0.0));
        hs.push(Hyperplane::new(vec![0.0, 0.0], 1.0));
        let mk = |cut| {
            CuttingTree::build(
                &hs,
                unit_box(),
                CuttingTreeConfig {
                    max_capacity: 4,
                    max_depth: 40,
                    cut,
                    ..CuttingTreeConfig::default()
                },
            )
        };
        let median = mk(CutRule::MedianExtents);
        let sampled = mk(CutRule::SampledCrossings);
        // The 256-element strided median can only balance better than the
        // 16-element sampled guess.
        assert!(
            median.depth() <= sampled.depth(),
            "median depth {} vs sampled depth {}",
            median.depth(),
            sampled.depth()
        );
        for _ in 0..30 {
            let x0 = rng.gen_range(0.0..0.9);
            let y0 = rng.gen_range(0.0..0.9);
            let q = BoundingBox::new(
                vec![x0, y0],
                vec![x0 + rng.gen_range(0.01..0.1), y0 + rng.gen_range(0.01..0.1)],
            );
            assert_eq!(median.query(&hs, &q), brute_force(&hs, &q), "box {q:?}");
        }
    }

    #[test]
    fn parallel_build_is_byte_identical_to_serial() {
        use eclipse_exec::ThreadPool;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(424242);
        // Enough hyperplanes that the root frontier crosses the parallel
        // partitioning threshold.
        let hs: Vec<Hyperplane> = (0..5000)
            .map(|_| {
                line(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                )
            })
            .collect();
        let root = BoundingBox::new(vec![-1.0, -1.0], vec![1.0, 1.0]);
        for cut in [CutRule::SampledCrossings, CutRule::MedianExtents] {
            let cfg = CuttingTreeConfig {
                max_capacity: 16,
                max_depth: 14,
                cut,
                ..CuttingTreeConfig::default()
            };
            let serial = CuttingTree::build(&hs, root.clone(), cfg);
            let pool = ThreadPool::with_threads(4);
            let parallel = CuttingTree::build_from_slab_with(
                HyperplaneSlab::from_hyperplanes(&hs),
                root.clone(),
                cfg,
                Some(&pool),
            );
            let (mut a, mut b) = (Vec::new(), Vec::new());
            serial.encode_into(&mut a);
            parallel.encode_into(&mut b);
            assert_eq!(a, b, "cut rule {cut:?}");
        }
    }

    #[test]
    fn identical_hyperplanes_do_not_recurse_forever() {
        // Every hyperplane is the same: no cut can separate them; the builder
        // must terminate with a single (oversized) leaf rather than recursing.
        let hs: Vec<Hyperplane> = (0..32).map(|_| line(1.0, -1.0, 0.0)).collect();
        let cfg = CuttingTreeConfig {
            max_capacity: 2,
            max_depth: 64,
            ..CuttingTreeConfig::default()
        };
        let tree = CuttingTree::build(&hs, unit_box(), cfg);
        let q = BoundingBox::new(vec![0.2, 0.2], vec![0.8, 0.8]);
        assert_eq!(tree.query(&hs, &q).len(), 32);
    }
}
