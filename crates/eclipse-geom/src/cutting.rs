//! The cutting-tree Intersection Index (§IV-B of the paper) — randomized,
//! sampling-based implementation.
//!
//! Chazelle's deterministic (1/t)-cuttings give the textbook worst-case
//! guarantee but, as the paper itself notes, "are theoretical in nature and
//! involve large constant factors"; the paper therefore implements the index
//! with a probabilistic scheme (random sampling of intersection vertices and
//! a Voronoi partition of the sampled points).  We follow the same spirit
//! with a structure that is easier to make *exact*:
//!
//! * the space is partitioned by a binary tree of axis-aligned cuts;
//! * at every node the cut coordinate is chosen from a **random sample of the
//!   hyperplanes crossing the cell** (the median of their zero-crossings along
//!   the widest axis, measured through the cell centre), so regions dense in
//!   hyperplanes are cut more finely — the property the paper's Voronoi
//!   sampling is after;
//! * leaves store the hyperplanes crossing their cell, and queries gather
//!   candidates from the leaves intersecting the query box and filter them
//!   with an exact hyperplane-box test.
//!
//! Unlike the quadtree, the depth of this tree is bounded by `max_depth`
//! *and* the data-adaptive median splits keep it balanced even when all
//! hyperplanes crowd into one corner of the root cell — which is exactly the
//! worst-case scenario of Figs. 13–14 where CUTTING must beat QUAD.  See
//! DESIGN.md §4 for the substitution rationale.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::approx::EPS;
use crate::hyperplane::Hyperplane;
use crate::point::BoundingBox;

/// Construction parameters for [`CuttingTree`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CuttingTreeConfig {
    /// Maximum number of hyperplanes a leaf may hold before it is cut.
    pub max_capacity: usize,
    /// Hard depth limit.
    pub max_depth: usize,
    /// Number of hyperplanes sampled per node to choose the cut (the paper's
    /// parameter `t`; higher values give better balanced cuts at higher
    /// construction cost).
    pub sample_size: usize,
    /// Global budget on the number of tree nodes; once exhausted the
    /// remaining cells stay leaves (queries remain exact).
    pub max_nodes: usize,
    /// Seed for the sampling RNG so index construction is reproducible.
    pub seed: u64,
}

impl Default for CuttingTreeConfig {
    fn default() -> Self {
        CuttingTreeConfig {
            max_capacity: 8,
            max_depth: 24,
            sample_size: 16,
            max_nodes: 1 << 16,
            seed: 0x5eed_cafe,
        }
    }
}

#[derive(Clone, Debug, Serialize, Deserialize)]
enum Node {
    Leaf {
        cell: BoundingBox,
        entries: Vec<usize>,
    },
    Internal {
        cell: BoundingBox,
        axis: usize,
        at: f64,
        low: Box<Node>,
        high: Box<Node>,
    },
}

impl Node {
    fn cell(&self) -> &BoundingBox {
        match self {
            Node::Leaf { cell, .. } | Node::Internal { cell, .. } => cell,
        }
    }
}

/// A randomized cutting tree over hyperplanes in k-dimensional space.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CuttingTree {
    root: Node,
    config: CuttingTreeConfig,
    len: usize,
    node_count: usize,
    max_depth_reached: usize,
}

impl CuttingTree {
    /// Builds the index over `hyperplanes`, bounded by `cell`.
    pub fn build(hyperplanes: &[Hyperplane], cell: BoundingBox, config: CuttingTreeConfig) -> Self {
        let all: Vec<usize> = (0..hyperplanes.len())
            .filter(|&i| hyperplanes[i].intersects_box(&cell))
            .collect();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut node_count = 0usize;
        let mut max_depth_reached = 0usize;
        let root = Self::build_node(
            hyperplanes,
            cell,
            all,
            0,
            &config,
            &mut rng,
            &mut node_count,
            &mut max_depth_reached,
        );
        CuttingTree {
            root,
            config,
            len: hyperplanes.len(),
            node_count,
            max_depth_reached,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn build_node(
        hyperplanes: &[Hyperplane],
        cell: BoundingBox,
        entries: Vec<usize>,
        depth: usize,
        config: &CuttingTreeConfig,
        rng: &mut StdRng,
        node_count: &mut usize,
        max_depth_reached: &mut usize,
    ) -> Node {
        *node_count += 1;
        *max_depth_reached = (*max_depth_reached).max(depth);
        if entries.len() <= config.max_capacity
            || depth >= config.max_depth
            || *node_count >= config.max_nodes
        {
            return Node::Leaf { cell, entries };
        }
        let Some((axis, at)) = choose_cut(hyperplanes, &cell, &entries, config, rng) else {
            return Node::Leaf { cell, entries };
        };
        let (low_cell, high_cell) = cell.split_at(axis, at);
        // Guard against non-progress cuts (degenerate halves).
        if low_cell.extent(axis) <= EPS || high_cell.extent(axis) <= EPS {
            return Node::Leaf { cell, entries };
        }
        let low_entries: Vec<usize> = entries
            .iter()
            .copied()
            .filter(|&i| hyperplanes[i].intersects_box(&low_cell))
            .collect();
        let high_entries: Vec<usize> = entries
            .iter()
            .copied()
            .filter(|&i| hyperplanes[i].intersects_box(&high_cell))
            .collect();
        // If the cut failed to separate anything, stop to avoid infinite
        // recursion (every hyperplane crosses both halves).
        if low_entries.len() == entries.len() && high_entries.len() == entries.len() {
            return Node::Leaf { cell, entries };
        }
        let low = Self::build_node(
            hyperplanes,
            low_cell,
            low_entries,
            depth + 1,
            config,
            rng,
            node_count,
            max_depth_reached,
        );
        let high = Self::build_node(
            hyperplanes,
            high_cell,
            high_entries,
            depth + 1,
            config,
            rng,
            node_count,
            max_depth_reached,
        );
        Node::Internal {
            cell,
            axis,
            at,
            low: Box::new(low),
            high: Box::new(high),
        }
    }

    /// The configuration the tree was built with.
    pub fn config(&self) -> CuttingTreeConfig {
        self.config
    }

    /// Number of hyperplanes the tree was built over.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the tree indexes no hyperplanes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of tree nodes (diagnostic).
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Deepest level created during construction (diagnostic).
    pub fn depth(&self) -> usize {
        self.max_depth_reached
    }

    /// The root cell.
    pub fn root_cell(&self) -> &BoundingBox {
        self.root.cell()
    }

    /// Returns the indices of all hyperplanes intersecting `query`, in
    /// ascending order and without duplicates.
    ///
    /// `hyperplanes` must be the same slice the tree was built from.
    ///
    /// # Panics
    /// Panics if `hyperplanes.len()` differs from the construction-time count.
    pub fn query(&self, hyperplanes: &[Hyperplane], query: &BoundingBox) -> Vec<usize> {
        assert_eq!(
            hyperplanes.len(),
            self.len,
            "query must use the hyperplane slice the index was built from"
        );
        let mut seen = vec![false; self.len];
        let mut out = Vec::new();
        let mut stack = vec![&self.root];
        while let Some(node) = stack.pop() {
            if !node.cell().intersects(query) {
                continue;
            }
            match node {
                Node::Leaf { entries, .. } => {
                    for &i in entries {
                        if !seen[i] && hyperplanes[i].intersects_box(query) {
                            seen[i] = true;
                            out.push(i);
                        }
                    }
                }
                Node::Internal {
                    axis,
                    at,
                    low,
                    high,
                    ..
                } => {
                    // Descend through the cut plane: a child strictly on the
                    // far side of the cut cannot intersect the query box
                    // (EPS slack keeps the test conservative; the per-node
                    // cell check above prunes any survivors exactly).
                    if query.lo()[*axis] <= *at + EPS {
                        stack.push(low);
                    }
                    if query.hi()[*axis] >= *at - EPS {
                        stack.push(high);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }
}

/// Chooses an axis and a cut coordinate for a cell.
///
/// The axis is the widest axis of the cell; the coordinate is the median of
/// the zero-crossings (along that axis, through the cell centre) of a random
/// sample of the hyperplanes crossing the cell.  Falls back to the cell
/// midpoint when no sampled hyperplane yields a usable crossing.
fn choose_cut(
    hyperplanes: &[Hyperplane],
    cell: &BoundingBox,
    entries: &[usize],
    config: &CuttingTreeConfig,
    rng: &mut StdRng,
) -> Option<(usize, f64)> {
    let k = cell.dim();
    // Pick the widest splittable axis.
    let axis = (0..k).max_by(|&a, &b| cell.extent(a).total_cmp(&cell.extent(b)))?;
    if cell.extent(axis) <= EPS {
        return None;
    }

    let sample_count = config.sample_size.min(entries.len()).max(1);
    let sample: Vec<usize> = if entries.len() <= sample_count {
        entries.to_vec()
    } else {
        entries
            .choose_multiple(rng, sample_count)
            .copied()
            .collect()
    };

    let center = cell.center();
    let mut crossings: Vec<f64> = Vec::with_capacity(sample.len());
    for &i in &sample {
        let h = &hyperplanes[i];
        let coeff = h.coeffs()[axis];
        if coeff.abs() <= EPS {
            continue;
        }
        // Solve h(x) = 0 with all coordinates fixed at the cell centre except
        // `axis`.
        let mut rest = 0.0;
        for (j, c) in h.coeffs().iter().enumerate() {
            if j != axis {
                rest += c * center.coord(j);
            }
        }
        let x = -(rest + h.offset()) / coeff;
        if x > cell.lo()[axis] + EPS && x < cell.hi()[axis] - EPS {
            crossings.push(x);
        }
    }

    let at = if crossings.is_empty() {
        // No informative crossing in the sample: fall back to the midpoint,
        // possibly jittered slightly so repeated fallbacks still make progress.
        let mid = 0.5 * (cell.lo()[axis] + cell.hi()[axis]);
        let jitter = cell.extent(axis) * rng.gen_range(-0.05..0.05);
        (mid + jitter).clamp(cell.lo()[axis], cell.hi()[axis])
    } else {
        crossings.sort_by(|a, b| a.total_cmp(b));
        crossings[crossings.len() / 2]
    };
    Some((axis, at))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(a: f64, b: f64, c: f64) -> Hyperplane {
        Hyperplane::new(vec![a, b], c)
    }

    fn unit_box() -> BoundingBox {
        BoundingBox::new(vec![0.0, 0.0], vec![1.0, 1.0])
    }

    fn brute_force(hs: &[Hyperplane], q: &BoundingBox) -> Vec<usize> {
        (0..hs.len()).filter(|&i| hs[i].intersects_box(q)).collect()
    }

    #[test]
    fn build_and_query_small() {
        let hs = vec![
            line(1.0, -1.0, 0.0),
            line(0.0, 1.0, -0.25),
            line(0.0, 1.0, -0.75),
            line(1.0, 1.0, -10.0),
        ];
        let tree = CuttingTree::build(&hs, unit_box(), CuttingTreeConfig::default());
        assert_eq!(tree.len(), 4);
        let q = BoundingBox::new(vec![0.0, 0.0], vec![0.5, 0.5]);
        assert_eq!(tree.query(&hs, &q), brute_force(&hs, &q));
    }

    #[test]
    fn query_agrees_with_brute_force_randomized() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(1234);
        let hs: Vec<Hyperplane> = (0..300)
            .map(|_| {
                line(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                )
            })
            .collect();
        let root = BoundingBox::new(vec![-1.0, -1.0], vec![1.0, 1.0]);
        let tree = CuttingTree::build(
            &hs,
            root,
            CuttingTreeConfig {
                max_capacity: 6,
                ..CuttingTreeConfig::default()
            },
        );
        for _ in 0..25 {
            let x0 = rng.gen_range(-1.0..0.9);
            let y0 = rng.gen_range(-1.0..0.9);
            let q = BoundingBox::new(
                vec![x0, y0],
                vec![x0 + rng.gen_range(0.01..0.1), y0 + rng.gen_range(0.01..0.1)],
            );
            assert_eq!(tree.query(&hs, &q), brute_force(&hs, &q));
        }
    }

    #[test]
    fn three_dimensional_cutting_tree() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let hs: Vec<Hyperplane> = (0..150)
            .map(|_| {
                Hyperplane::new(
                    vec![
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                    ],
                    rng.gen_range(-0.5..0.5),
                )
            })
            .collect();
        let root = BoundingBox::new(vec![-1.0, -1.0, -1.0], vec![1.0, 1.0, 1.0]);
        let tree = CuttingTree::build(&hs, root, CuttingTreeConfig::default());
        for _ in 0..10 {
            let lo: Vec<f64> = (0..3).map(|_| rng.gen_range(-1.0..0.8)).collect();
            let hi: Vec<f64> = lo.iter().map(|l| l + rng.gen_range(0.05..0.2)).collect();
            let q = BoundingBox::new(lo, hi);
            assert_eq!(tree.query(&hs, &q), brute_force(&hs, &q));
        }
    }

    #[test]
    fn clustered_lines_stay_balanced() {
        // The same clustered worst case that makes the quadtree degenerate:
        // the cutting tree's sampled-median cuts keep the depth far below the
        // hyperplane count.
        let hs: Vec<Hyperplane> = (0..256)
            .map(|i| line(1.0, -1.0, -1e-4 * i as f64))
            .collect();
        let cfg = CuttingTreeConfig {
            max_capacity: 4,
            max_depth: 40,
            ..CuttingTreeConfig::default()
        };
        let tree = CuttingTree::build(&hs, unit_box(), cfg);
        assert!(
            tree.depth() <= 20,
            "cutting tree should stay shallow on clustered input, got {}",
            tree.depth()
        );
        let q = BoundingBox::new(vec![0.4, 0.4], vec![0.6, 0.6]);
        assert_eq!(tree.query(&hs, &q), brute_force(&hs, &q));
    }

    #[test]
    fn construction_is_deterministic_for_a_seed() {
        let hs: Vec<Hyperplane> = (0..50).map(|i| line(1.0, -0.5, -0.01 * i as f64)).collect();
        let a = CuttingTree::build(&hs, unit_box(), CuttingTreeConfig::default());
        let b = CuttingTree::build(&hs, unit_box(), CuttingTreeConfig::default());
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.depth(), b.depth());
        let q = BoundingBox::new(vec![0.1, 0.1], vec![0.3, 0.3]);
        assert_eq!(a.query(&hs, &q), b.query(&hs, &q));
    }

    #[test]
    fn empty_tree_queries_cleanly() {
        let hs: Vec<Hyperplane> = Vec::new();
        let tree = CuttingTree::build(&hs, unit_box(), CuttingTreeConfig::default());
        assert!(tree.is_empty());
        assert_eq!(tree.query(&hs, &unit_box()), Vec::<usize>::new());
    }

    #[test]
    fn identical_hyperplanes_do_not_recurse_forever() {
        // Every hyperplane is the same: no cut can separate them; the builder
        // must terminate with a single (oversized) leaf rather than recursing.
        let hs: Vec<Hyperplane> = (0..32).map(|_| line(1.0, -1.0, 0.0)).collect();
        let cfg = CuttingTreeConfig {
            max_capacity: 2,
            max_depth: 64,
            ..CuttingTreeConfig::default()
        };
        let tree = CuttingTree::build(&hs, unit_box(), cfg);
        let q = BoundingBox::new(vec![0.2, 0.2], vec![0.8, 0.8]);
        assert_eq!(tree.query(&hs, &q).len(), 32);
    }
}
