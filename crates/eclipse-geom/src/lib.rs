//! Computational-geometry substrate for the eclipse query operator.
//!
//! This crate hosts every geometric building block the eclipse algorithms
//! (crate `eclipse-core`) and the skyline/kNN substrate (crate
//! `eclipse-skyline`) depend on:
//!
//! * [`point`] — fixed-precision d-dimensional points and bounding boxes,
//! * [`hyperplane`] — hyperplanes, dual transform, score lines,
//! * [`dual`] — the primal ⇄ dual transform of de Berg et al. used in §IV of
//!   the paper,
//! * [`arrangement`] — the 2-D arrangement of dual lines (intersection
//!   abscissae, interval partition of the x-axis),
//! * [`quadtree`] — the line quadtree / hyperplane octree Intersection Index,
//! * [`cutting`] — the randomized cutting-tree Intersection Index,
//! * [`rtree`] — an STR bulk-loaded R-tree with best-first kNN search,
//! * [`linalg`] — small dense linear algebra (rank, solve) for the
//!   domination-vector matrices of Theorem 6,
//! * [`lp`] — a simplex LP solver used for convex-hull-query membership.
//!
//! Everything is implemented from scratch on `f64` with an explicit epsilon
//! policy (see [`EPS`] and [`approx`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod approx;
pub mod arrangement;
pub mod cutting;
pub mod dual;
pub mod hyperplane;
pub mod linalg;
pub mod lp;
pub mod point;
pub mod quadtree;
pub mod rtree;
pub mod traverse;

pub use approx::{approx_eq, approx_ge, approx_le, EPS};
pub use hyperplane::{DualLine, Hyperplane};
pub use point::{BoundingBox, Point};
