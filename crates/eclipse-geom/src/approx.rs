//! Epsilon policy and approximate comparisons.
//!
//! Every geometric predicate in the workspace goes through the helpers in
//! this module so that the tolerance used for "equal scores", "point on a
//! hyperplane" and "intersection on an interval boundary" is consistent and
//! easy to audit.  The default tolerance [`EPS`] is appropriate for the value
//! ranges used by the paper's workloads (coordinates in `[0, 1]` or small
//! integer attribute totals); callers working at very different scales can use
//! the `_with` variants that take an explicit tolerance.

/// Default absolute tolerance for geometric comparisons.
pub const EPS: f64 = 1e-9;

/// Returns `true` if `a` and `b` are within [`EPS`] of each other.
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    approx_eq_with(a, b, EPS)
}

/// Returns `true` if `a` and `b` are within `eps` of each other.
#[inline]
pub fn approx_eq_with(a: f64, b: f64, eps: f64) -> bool {
    (a - b).abs() <= eps
}

/// Returns `true` if `a ≤ b` up to [`EPS`] (i.e. `a` is not significantly
/// greater than `b`).
#[inline]
pub fn approx_le(a: f64, b: f64) -> bool {
    a <= b + EPS
}

/// Returns `true` if `a ≥ b` up to [`EPS`].
#[inline]
pub fn approx_ge(a: f64, b: f64) -> bool {
    a + EPS >= b
}

/// Returns `true` if `a < b` by more than [`EPS`] (a *significant* strict
/// inequality).
#[inline]
pub fn strictly_lt(a: f64, b: f64) -> bool {
    a + EPS < b
}

/// Returns `true` if `a > b` by more than [`EPS`].
#[inline]
pub fn strictly_gt(a: f64, b: f64) -> bool {
    a > b + EPS
}

/// A deterministic total order on `f64` suitable for sorting geometric keys.
///
/// NaNs sort last; `-0.0` and `+0.0` compare equal for our purposes (we never
/// generate NaNs in the library itself, but user input is not trusted).
#[inline]
pub fn total_cmp(a: f64, b: f64) -> std::cmp::Ordering {
    a.total_cmp(&b)
}

/// Clamps a value into `[lo, hi]`, tolerating `lo > hi` by returning `lo`.
#[inline]
pub fn clamp(v: f64, lo: f64, hi: f64) -> f64 {
    if hi < lo {
        lo
    } else {
        v.max(lo).min(hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_within_eps() {
        assert!(approx_eq(1.0, 1.0 + EPS / 2.0));
        assert!(!approx_eq(1.0, 1.0 + EPS * 10.0));
        assert!(approx_eq_with(1.0, 1.1, 0.2));
    }

    #[test]
    fn approx_inequalities() {
        assert!(approx_le(1.0, 1.0));
        assert!(approx_le(1.0 + EPS / 2.0, 1.0));
        assert!(!approx_le(1.1, 1.0));
        assert!(approx_ge(1.0, 1.0 + EPS / 2.0));
        assert!(strictly_lt(1.0, 1.1));
        assert!(!strictly_lt(1.0, 1.0 + EPS / 2.0));
        assert!(strictly_gt(1.1, 1.0));
    }

    #[test]
    fn total_cmp_handles_nan() {
        use std::cmp::Ordering;
        assert_eq!(total_cmp(1.0, 2.0), Ordering::Less);
        assert_eq!(total_cmp(f64::NAN, 2.0), Ordering::Greater);
        assert_eq!(total_cmp(2.0, 2.0), Ordering::Equal);
    }

    #[test]
    fn clamp_behaviour() {
        assert_eq!(clamp(5.0, 0.0, 1.0), 1.0);
        assert_eq!(clamp(-5.0, 0.0, 1.0), 0.0);
        assert_eq!(clamp(0.5, 0.0, 1.0), 0.5);
        // Degenerate interval: lo wins.
        assert_eq!(clamp(0.5, 2.0, 1.0), 2.0);
    }
}
