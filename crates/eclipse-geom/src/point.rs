//! d-dimensional points and axis-aligned bounding boxes.
//!
//! A [`Point`] is the fundamental record of the whole workspace: a small,
//! heap-allocated vector of `f64` attribute values.  All attribute semantics
//! follow the paper: *smaller is better* (the query point sits at the origin
//! and every operator minimises the weighted sum of attributes).

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::approx::{approx_eq, total_cmp};

/// A point in d-dimensional attribute space.
///
/// Coordinates are stored in a boxed slice to keep the type two words wide
/// and cheap to move.  Dimensions are addressed zero-based in code; the
/// paper's one-based notation `p[j]` corresponds to `p.coord(j - 1)`.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Point {
    coords: Box<[f64]>,
}

impl Point {
    /// Creates a point from a coordinate vector.
    ///
    /// # Panics
    /// Panics if `coords` is empty; zero-dimensional points are meaningless
    /// for every operator in this workspace.
    pub fn new(coords: Vec<f64>) -> Self {
        assert!(!coords.is_empty(), "a Point must have at least 1 dimension");
        Point {
            coords: coords.into_boxed_slice(),
        }
    }

    /// Creates a point from a slice of coordinates.
    pub fn from_slice(coords: &[f64]) -> Self {
        Self::new(coords.to_vec())
    }

    /// The dimensionality of the point.
    #[inline]
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// The `i`-th coordinate (zero-based).
    #[inline]
    pub fn coord(&self, i: usize) -> f64 {
        self.coords[i]
    }

    /// All coordinates as a slice.
    #[inline]
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Returns a new point translated by `delta` (element-wise addition).
    pub fn translate(&self, delta: &[f64]) -> Point {
        assert_eq!(delta.len(), self.dim(), "dimension mismatch in translate");
        Point::new(
            self.coords
                .iter()
                .zip(delta.iter())
                .map(|(a, b)| a + b)
                .collect(),
        )
    }

    /// Re-expresses this point relative to a query point `q`, i.e. returns
    /// `self - q`.  The paper assumes the query point is the origin; this is
    /// the helper that makes that assumption hold for arbitrary query points.
    pub fn relative_to(&self, q: &Point) -> Point {
        assert_eq!(q.dim(), self.dim(), "dimension mismatch in relative_to");
        Point::new(
            self.coords
                .iter()
                .zip(q.coords.iter())
                .map(|(a, b)| a - b)
                .collect(),
        )
    }

    /// Euclidean (L2) distance to another point.
    pub fn l2_distance(&self, other: &Point) -> f64 {
        assert_eq!(other.dim(), self.dim(), "dimension mismatch in l2_distance");
        self.coords
            .iter()
            .zip(other.coords.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Manhattan (L1) distance to another point.
    pub fn l1_distance(&self, other: &Point) -> f64 {
        assert_eq!(other.dim(), self.dim(), "dimension mismatch in l1_distance");
        self.coords
            .iter()
            .zip(other.coords.iter())
            .map(|(a, b)| (a - b).abs())
            .sum()
    }

    /// Weighted sum `Σ_i w[i] · p[i]` of the point's attributes — the scoring
    /// function `S(p)` of the paper when `w` is a full weight vector
    /// (including `w[d] = 1`).
    pub fn weighted_sum(&self, weights: &[f64]) -> f64 {
        assert_eq!(
            weights.len(),
            self.dim(),
            "weight vector must match point dimensionality"
        );
        self.coords
            .iter()
            .zip(weights.iter())
            .map(|(p, w)| p * w)
            .sum()
    }

    /// Returns `true` when every coordinate of the two points is within the
    /// default tolerance.
    pub fn approx_eq(&self, other: &Point) -> bool {
        self.dim() == other.dim()
            && self
                .coords
                .iter()
                .zip(other.coords.iter())
                .all(|(a, b)| approx_eq(*a, *b))
    }

    /// Lexicographic comparison with deterministic NaN handling, useful for
    /// canonical sorting of result sets in tests.
    pub fn lex_cmp(&self, other: &Point) -> std::cmp::Ordering {
        for (a, b) in self.coords.iter().zip(other.coords.iter()) {
            let c = total_cmp(*a, *b);
            if c != std::cmp::Ordering::Equal {
                return c;
            }
        }
        self.dim().cmp(&other.dim())
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Point(")?;
        for (i, c) in self.coords.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.coords.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c:.4}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<f64>> for Point {
    fn from(v: Vec<f64>) -> Self {
        Point::new(v)
    }
}

impl From<&[f64]> for Point {
    fn from(v: &[f64]) -> Self {
        Point::from_slice(v)
    }
}

impl std::ops::Index<usize> for Point {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.coords[i]
    }
}

/// An axis-aligned bounding box in d dimensions, used by the R-tree, the
/// line quadtree / hyperplane octree and the cutting tree.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    lo: Box<[f64]>,
    hi: Box<[f64]>,
}

impl BoundingBox {
    /// Creates a bounding box from its lower and upper corners.
    ///
    /// # Panics
    /// Panics if the corners have different dimensionality, are empty, or if
    /// any `lo[i] > hi[i]`.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "corner dimensionality mismatch");
        assert!(
            !lo.is_empty(),
            "a BoundingBox must have at least 1 dimension"
        );
        for (l, h) in lo.iter().zip(hi.iter()) {
            assert!(l <= h, "BoundingBox requires lo <= hi on every axis");
        }
        BoundingBox {
            lo: lo.into_boxed_slice(),
            hi: hi.into_boxed_slice(),
        }
    }

    /// The degenerate box covering a single point.
    pub fn from_point(p: &Point) -> Self {
        BoundingBox::new(p.coords().to_vec(), p.coords().to_vec())
    }

    /// The smallest box enclosing all the given points.
    ///
    /// Returns `None` for an empty slice.
    pub fn enclosing(points: &[Point]) -> Option<Self> {
        let first = points.first()?;
        let d = first.dim();
        let mut lo = vec![f64::INFINITY; d];
        let mut hi = vec![f64::NEG_INFINITY; d];
        for p in points {
            assert_eq!(p.dim(), d, "mixed dimensionality in enclosing");
            for i in 0..d {
                lo[i] = lo[i].min(p.coord(i));
                hi[i] = hi[i].max(p.coord(i));
            }
        }
        Some(BoundingBox::new(lo, hi))
    }

    /// Dimensionality of the box.
    #[inline]
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Lower corner.
    #[inline]
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper corner.
    #[inline]
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Heap bytes owned by the box: the two boxed corner slices.  Exact for
    /// the buffers themselves (boxed slices carry no spare capacity); the
    /// allocator's per-allocation header is not included.
    #[inline]
    pub fn heap_bytes(&self) -> usize {
        (self.lo.len() + self.hi.len()) * std::mem::size_of::<f64>()
    }

    /// Side length on axis `i`.
    #[inline]
    pub fn extent(&self, i: usize) -> f64 {
        self.hi[i] - self.lo[i]
    }

    /// The centre of the box.
    pub fn center(&self) -> Point {
        Point::new(
            self.lo
                .iter()
                .zip(self.hi.iter())
                .map(|(l, h)| 0.5 * (l + h))
                .collect(),
        )
    }

    /// Hyper-volume of the box (product of extents).
    pub fn volume(&self) -> f64 {
        (0..self.dim()).map(|i| self.extent(i)).product()
    }

    /// Perimeter-like measure: the sum of extents (used by the R-tree split
    /// heuristics).
    pub fn margin(&self) -> f64 {
        (0..self.dim()).map(|i| self.extent(i)).sum()
    }

    /// Returns `true` if the point lies inside the box (boundaries included).
    pub fn contains_point(&self, p: &Point) -> bool {
        assert_eq!(p.dim(), self.dim(), "dimension mismatch in contains_point");
        (0..self.dim()).all(|i| p.coord(i) >= self.lo[i] && p.coord(i) <= self.hi[i])
    }

    /// Returns `true` if `other` is entirely contained in `self`.
    pub fn contains_box(&self, other: &BoundingBox) -> bool {
        assert_eq!(
            other.dim(),
            self.dim(),
            "dimension mismatch in contains_box"
        );
        (0..self.dim()).all(|i| self.lo[i] <= other.lo[i] && self.hi[i] >= other.hi[i])
    }

    /// Returns `true` if the boxes intersect (boundaries included).
    pub fn intersects(&self, other: &BoundingBox) -> bool {
        assert_eq!(other.dim(), self.dim(), "dimension mismatch in intersects");
        (0..self.dim()).all(|i| self.lo[i] <= other.hi[i] && other.lo[i] <= self.hi[i])
    }

    /// The smallest box enclosing both boxes.
    pub fn union(&self, other: &BoundingBox) -> BoundingBox {
        assert_eq!(other.dim(), self.dim(), "dimension mismatch in union");
        BoundingBox::new(
            self.lo
                .iter()
                .zip(other.lo.iter())
                .map(|(a, b)| a.min(*b))
                .collect(),
            self.hi
                .iter()
                .zip(other.hi.iter())
                .map(|(a, b)| a.max(*b))
                .collect(),
        )
    }

    /// The increase in volume caused by enlarging `self` to also cover
    /// `other` — the classic R-tree insertion heuristic.
    pub fn enlargement(&self, other: &BoundingBox) -> f64 {
        self.union(other).volume() - self.volume()
    }

    /// Minimum squared Euclidean distance from `p` to the box (0 when inside).
    pub fn min_sq_distance(&self, p: &Point) -> f64 {
        assert_eq!(p.dim(), self.dim(), "dimension mismatch in min_sq_distance");
        let mut acc = 0.0;
        for i in 0..self.dim() {
            let c = p.coord(i);
            let d = if c < self.lo[i] {
                self.lo[i] - c
            } else if c > self.hi[i] {
                c - self.hi[i]
            } else {
                0.0
            };
            acc += d * d;
        }
        acc
    }

    /// Minimum possible weighted sum `Σ w[i]·x[i]` over all `x` in the box,
    /// assuming non-negative weights (so the minimum is attained at the lower
    /// corner for positive weights and at the upper corner for negative ones).
    pub fn min_weighted_sum(&self, weights: &[f64]) -> f64 {
        assert_eq!(weights.len(), self.dim(), "weight dimensionality mismatch");
        weights
            .iter()
            .enumerate()
            .map(|(i, w)| {
                if *w >= 0.0 {
                    w * self.lo[i]
                } else {
                    w * self.hi[i]
                }
            })
            .sum()
    }

    /// Maximum possible weighted sum over the box (counterpart of
    /// [`BoundingBox::min_weighted_sum`]).
    pub fn max_weighted_sum(&self, weights: &[f64]) -> f64 {
        assert_eq!(weights.len(), self.dim(), "weight dimensionality mismatch");
        weights
            .iter()
            .enumerate()
            .map(|(i, w)| {
                if *w >= 0.0 {
                    w * self.hi[i]
                } else {
                    w * self.lo[i]
                }
            })
            .sum()
    }

    /// Splits the box into two halves along `axis` at coordinate `at`
    /// (clamped into the box).  Used by the cutting tree.
    pub fn split_at(&self, axis: usize, at: f64) -> (BoundingBox, BoundingBox) {
        assert!(axis < self.dim(), "split axis out of range");
        let at = at.max(self.lo[axis]).min(self.hi[axis]);
        let mut left_hi = self.hi.to_vec();
        left_hi[axis] = at;
        let mut right_lo = self.lo.to_vec();
        right_lo[axis] = at;
        (
            BoundingBox::new(self.lo.to_vec(), left_hi),
            BoundingBox::new(right_lo, self.hi.to_vec()),
        )
    }

    /// Appends the box's snapshot encoding: dimensionality, then both
    /// corners as IEEE-754 bit patterns.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        eclipse_persist::enc::put_u32(out, self.dim() as u32);
        for &v in self.lo.iter().chain(self.hi.iter()) {
            eclipse_persist::enc::put_f64(out, v);
        }
    }

    /// Decodes a box previously written by [`BoundingBox::encode_into`],
    /// consuming exactly its bytes from `cur`.
    ///
    /// # Errors
    /// A typed [`eclipse_persist::PersistError`] on truncation, a zero
    /// dimensionality, or corners violating `lo ≤ hi` (including NaNs) —
    /// the invariants [`BoundingBox::new`] would otherwise panic on.
    pub fn decode(cur: &mut eclipse_persist::Cursor<'_>) -> eclipse_persist::PersistResult<Self> {
        use eclipse_persist::PersistError;
        let k = cur.u32()? as usize;
        if k == 0 {
            return Err(PersistError::Malformed(
                "a BoundingBox needs at least 1 dimension".to_string(),
            ));
        }
        let lo = cur.f64_vec(k)?;
        let hi = cur.f64_vec(k)?;
        for (l, h) in lo.iter().zip(hi.iter()) {
            // NaN corners fail this too: `partial_cmp` is `None` for them.
            if l.partial_cmp(h).is_none_or(std::cmp::Ordering::is_gt) {
                return Err(PersistError::Malformed(format!(
                    "BoundingBox corner {l} > {h} (or NaN)"
                )));
            }
        }
        Ok(BoundingBox {
            lo: lo.into_boxed_slice(),
            hi: hi.into_boxed_slice(),
        })
    }

    /// Returns the `2^d` corner points of the box.  Only intended for small
    /// `d` (the workspace never exceeds d = 8).
    pub fn corners(&self) -> Vec<Point> {
        let d = self.dim();
        let mut out = Vec::with_capacity(1 << d);
        for mask in 0u32..(1u32 << d) {
            let mut c = Vec::with_capacity(d);
            for i in 0..d {
                if mask & (1 << i) != 0 {
                    c.push(self.hi[i]);
                } else {
                    c.push(self.lo[i]);
                }
            }
            out.push(Point::new(c));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(coords: &[f64]) -> Point {
        Point::from_slice(coords)
    }

    #[test]
    fn point_basic_accessors() {
        let a = p(&[1.0, 6.0]);
        assert_eq!(a.dim(), 2);
        assert_eq!(a.coord(0), 1.0);
        assert_eq!(a[1], 6.0);
        assert_eq!(a.coords(), &[1.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "at least 1 dimension")]
    fn point_rejects_empty() {
        let _ = Point::new(vec![]);
    }

    #[test]
    fn point_weighted_sum_matches_paper_example() {
        // Figure 1: p1 = (1, 6), w = <2, 1> -> S(p1) = 8.
        let p1 = p(&[1.0, 6.0]);
        assert_eq!(p1.weighted_sum(&[2.0, 1.0]), 8.0);
        // p4 = (8, 5) -> S = 21 for w = <2,1>.
        let p4 = p(&[8.0, 5.0]);
        assert_eq!(p4.weighted_sum(&[2.0, 1.0]), 21.0);
    }

    #[test]
    fn point_distances() {
        let a = p(&[0.0, 0.0]);
        let b = p(&[3.0, 4.0]);
        assert!((a.l2_distance(&b) - 5.0).abs() < 1e-12);
        assert!((a.l1_distance(&b) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn point_relative_to_query() {
        let a = p(&[3.0, 4.0]);
        let q = p(&[1.0, 1.0]);
        assert_eq!(a.relative_to(&q), p(&[2.0, 3.0]));
        assert_eq!(a.translate(&[-1.0, -1.0]), p(&[2.0, 3.0]));
    }

    #[test]
    fn point_lex_cmp_and_approx_eq() {
        use std::cmp::Ordering;
        assert_eq!(p(&[1.0, 2.0]).lex_cmp(&p(&[1.0, 3.0])), Ordering::Less);
        assert_eq!(p(&[2.0, 2.0]).lex_cmp(&p(&[1.0, 3.0])), Ordering::Greater);
        assert_eq!(p(&[1.0, 2.0]).lex_cmp(&p(&[1.0, 2.0])), Ordering::Equal);
        assert!(p(&[1.0, 2.0]).approx_eq(&p(&[1.0, 2.0 + 1e-12])));
        assert!(!p(&[1.0, 2.0]).approx_eq(&p(&[1.0, 2.1])));
        assert!(!p(&[1.0]).approx_eq(&p(&[1.0, 2.0])));
    }

    #[test]
    fn display_and_debug_format() {
        let a = p(&[1.0, 2.5]);
        assert_eq!(format!("{a}"), "(1.0000, 2.5000)");
        assert_eq!(format!("{a:?}"), "Point(1, 2.5)");
    }

    #[test]
    fn bbox_construction_and_accessors() {
        let b = BoundingBox::new(vec![0.0, 1.0], vec![2.0, 3.0]);
        assert_eq!(b.dim(), 2);
        assert_eq!(b.extent(0), 2.0);
        assert_eq!(b.extent(1), 2.0);
        assert_eq!(b.volume(), 4.0);
        assert_eq!(b.margin(), 4.0);
        assert_eq!(b.center(), p(&[1.0, 2.0]));
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn bbox_rejects_inverted() {
        let _ = BoundingBox::new(vec![1.0], vec![0.0]);
    }

    #[test]
    fn bbox_enclosing_points() {
        let pts = vec![p(&[1.0, 6.0]), p(&[4.0, 4.0]), p(&[6.0, 1.0])];
        let b = BoundingBox::enclosing(&pts).unwrap();
        assert_eq!(b.lo(), &[1.0, 1.0]);
        assert_eq!(b.hi(), &[6.0, 6.0]);
        assert!(BoundingBox::enclosing(&[]).is_none());
    }

    #[test]
    fn bbox_containment_and_intersection() {
        let b = BoundingBox::new(vec![0.0, 0.0], vec![4.0, 4.0]);
        let inner = BoundingBox::new(vec![1.0, 1.0], vec![2.0, 2.0]);
        let overlapping = BoundingBox::new(vec![3.0, 3.0], vec![5.0, 5.0]);
        let outside = BoundingBox::new(vec![5.0, 5.0], vec![6.0, 6.0]);
        assert!(b.contains_point(&p(&[0.0, 4.0])));
        assert!(!b.contains_point(&p(&[4.1, 0.0])));
        assert!(b.contains_box(&inner));
        assert!(!b.contains_box(&overlapping));
        assert!(b.intersects(&overlapping));
        assert!(!b.intersects(&outside));
        // Touching boundaries count as intersecting.
        let touching = BoundingBox::new(vec![4.0, 0.0], vec![5.0, 1.0]);
        assert!(b.intersects(&touching));
    }

    #[test]
    fn bbox_union_and_enlargement() {
        let a = BoundingBox::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let b = BoundingBox::new(vec![2.0, 2.0], vec![3.0, 3.0]);
        let u = a.union(&b);
        assert_eq!(u.lo(), &[0.0, 0.0]);
        assert_eq!(u.hi(), &[3.0, 3.0]);
        assert!((a.enlargement(&b) - (9.0 - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn bbox_min_sq_distance() {
        let b = BoundingBox::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        assert_eq!(b.min_sq_distance(&p(&[0.5, 0.5])), 0.0);
        assert!((b.min_sq_distance(&p(&[2.0, 0.5])) - 1.0).abs() < 1e-12);
        assert!((b.min_sq_distance(&p(&[2.0, 2.0])) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bbox_weighted_sum_bounds() {
        let b = BoundingBox::new(vec![1.0, 2.0], vec![3.0, 5.0]);
        assert_eq!(b.min_weighted_sum(&[1.0, 1.0]), 3.0);
        assert_eq!(b.max_weighted_sum(&[1.0, 1.0]), 8.0);
        // Negative weight flips the corner used.
        assert_eq!(b.min_weighted_sum(&[-1.0, 1.0]), -3.0 + 2.0);
        assert_eq!(b.max_weighted_sum(&[-1.0, 1.0]), -1.0 + 5.0);
    }

    #[test]
    fn bbox_split_and_corners() {
        let b = BoundingBox::new(vec![0.0, 0.0], vec![2.0, 2.0]);
        let (l, r) = b.split_at(0, 1.0);
        assert_eq!(l.hi()[0], 1.0);
        assert_eq!(r.lo()[0], 1.0);
        // Split coordinate is clamped into the box.
        let (l2, _) = b.split_at(1, 10.0);
        assert_eq!(l2.hi()[1], 2.0);
        let corners = b.corners();
        assert_eq!(corners.len(), 4);
        assert!(corners.contains(&p(&[0.0, 0.0])));
        assert!(corners.contains(&p(&[2.0, 2.0])));
        assert!(corners.contains(&p(&[0.0, 2.0])));
        assert!(corners.contains(&p(&[2.0, 0.0])));
    }
}
