//! A from-scratch R-tree with Sort-Tile-Recursive (STR) bulk loading,
//! box range queries and best-first k-nearest-neighbour search.
//!
//! The eclipse paper compares its operator against kNN; the reproduction
//! hint suggested the `rstar` crate, which is not in the offline crate set,
//! so this module provides the equivalent substrate: a static, bulk-loaded
//! R-tree over points used by `eclipse-skyline::knn` for index-accelerated
//! nearest-neighbour queries (both Euclidean and linear-scoring kNN).

use serde::{Deserialize, Serialize};

use crate::point::{BoundingBox, Point};

/// Maximum number of entries per node used by the STR bulk loader.
pub const DEFAULT_NODE_CAPACITY: usize = 16;

#[derive(Clone, Debug, Serialize, Deserialize)]
enum Node {
    Leaf {
        bbox: BoundingBox,
        /// Indices into the point slice the tree was built from.
        entries: Vec<usize>,
    },
    Internal {
        bbox: BoundingBox,
        children: Vec<Node>,
    },
}

impl Node {
    fn bbox(&self) -> &BoundingBox {
        match self {
            Node::Leaf { bbox, .. } | Node::Internal { bbox, .. } => bbox,
        }
    }
}

/// A static R-tree over a point set, built with STR bulk loading.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RTree {
    root: Option<Node>,
    len: usize,
    node_capacity: usize,
    height: usize,
}

impl RTree {
    /// Bulk-loads the tree from `points` with the default node capacity.
    pub fn bulk_load(points: &[Point]) -> Self {
        Self::bulk_load_with_capacity(points, DEFAULT_NODE_CAPACITY)
    }

    /// Bulk-loads the tree with an explicit node capacity (`≥ 2`).
    ///
    /// # Panics
    /// Panics if `node_capacity < 2` or the points have inconsistent
    /// dimensionality.
    pub fn bulk_load_with_capacity(points: &[Point], node_capacity: usize) -> Self {
        assert!(node_capacity >= 2, "node capacity must be at least 2");
        if points.is_empty() {
            return RTree {
                root: None,
                len: 0,
                node_capacity,
                height: 0,
            };
        }
        let dim = points[0].dim();
        assert!(
            points.iter().all(|p| p.dim() == dim),
            "all points must share the same dimensionality"
        );

        // STR: recursively sort by successive axes and tile into slabs.
        let ids: Vec<usize> = (0..points.len()).collect();
        let leaf_groups = str_partition(points, ids, node_capacity, 0);
        let mut level: Vec<Node> = leaf_groups
            .into_iter()
            .map(|entries| {
                let pts: Vec<Point> = entries.iter().map(|&i| points[i].clone()).collect();
                Node::Leaf {
                    bbox: BoundingBox::enclosing(&pts).expect("non-empty leaf"),
                    entries,
                }
            })
            .collect();
        let mut height = 1;

        while level.len() > 1 {
            // Pack the current level into parent nodes, again with STR on the
            // child bbox centres.
            let centres: Vec<Point> = level.iter().map(|n| n.bbox().center()).collect();
            let ids: Vec<usize> = (0..level.len()).collect();
            let groups = str_partition(&centres, ids, node_capacity, 0);
            // Consume the current level by index.
            let mut taken: Vec<Option<Node>> = level.into_iter().map(Some).collect();
            let mut next: Vec<Node> = Vec::with_capacity(groups.len());
            for g in groups {
                let children: Vec<Node> = g
                    .into_iter()
                    .map(|i| taken[i].take().expect("child consumed twice"))
                    .collect();
                let bbox = children
                    .iter()
                    .skip(1)
                    .fold(children[0].bbox().clone(), |acc, c| acc.union(c.bbox()));
                next.push(Node::Internal { bbox, children });
            }
            level = next;
            height += 1;
        }

        RTree {
            root: level.pop(),
            len: points.len(),
            node_capacity,
            height,
        }
    }

    /// Number of points indexed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree in levels (0 for an empty tree).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Node capacity used at build time.
    pub fn node_capacity(&self) -> usize {
        self.node_capacity
    }

    /// Returns the indices of all points inside `query` (boundaries
    /// included), in ascending order.
    ///
    /// `points` must be the slice the tree was built from.
    pub fn range_query(&self, points: &[Point], query: &BoundingBox) -> Vec<usize> {
        assert_eq!(points.len(), self.len, "point slice mismatch");
        let mut out = Vec::new();
        let Some(root) = &self.root else {
            return out;
        };
        let mut stack = vec![root];
        while let Some(node) = stack.pop() {
            if !node.bbox().intersects(query) {
                continue;
            }
            match node {
                Node::Leaf { entries, .. } => {
                    for &i in entries {
                        if query.contains_point(&points[i]) {
                            out.push(i);
                        }
                    }
                }
                Node::Internal { children, .. } => {
                    for c in children {
                        stack.push(c);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Best-first k-nearest-neighbour search under Euclidean distance.
    ///
    /// Returns up to `k` `(index, distance)` pairs in ascending distance
    /// order.  `points` must be the slice the tree was built from.
    pub fn knn(&self, points: &[Point], query: &Point, k: usize) -> Vec<(usize, f64)> {
        assert_eq!(points.len(), self.len, "point slice mismatch");
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        struct Candidate<'a> {
            dist_sq: f64,
            node: Option<&'a Node>,
            point: Option<usize>,
        }
        impl PartialEq for Candidate<'_> {
            fn eq(&self, other: &Self) -> bool {
                self.dist_sq.total_cmp(&other.dist_sq).is_eq()
            }
        }
        impl Eq for Candidate<'_> {}
        impl PartialOrd for Candidate<'_> {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Candidate<'_> {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.dist_sq.total_cmp(&other.dist_sq)
            }
        }

        let mut out = Vec::new();
        if k == 0 {
            return out;
        }
        let Some(root) = &self.root else {
            return out;
        };
        let mut heap: BinaryHeap<Reverse<Candidate<'_>>> = BinaryHeap::new();
        heap.push(Reverse(Candidate {
            dist_sq: root.bbox().min_sq_distance(query),
            node: Some(root),
            point: None,
        }));
        while let Some(Reverse(cand)) = heap.pop() {
            if let Some(i) = cand.point {
                out.push((i, cand.dist_sq.sqrt()));
                if out.len() == k {
                    break;
                }
                continue;
            }
            match cand.node.expect("candidate must carry node or point") {
                Node::Leaf { entries, .. } => {
                    for &i in entries {
                        let d = points[i].l2_distance(query);
                        heap.push(Reverse(Candidate {
                            dist_sq: d * d,
                            node: None,
                            point: Some(i),
                        }));
                    }
                }
                Node::Internal { children, .. } => {
                    for c in children {
                        heap.push(Reverse(Candidate {
                            dist_sq: c.bbox().min_sq_distance(query),
                            node: Some(c),
                            point: None,
                        }));
                    }
                }
            }
        }
        out
    }

    /// Returns the `k` points with the smallest weighted sum `Σ w[i]·p[i]`
    /// (linear-scoring top-k, the paper's kNN flavour), pruned with the
    /// node-level lower bound `min_weighted_sum`.
    ///
    /// Requires non-negative weights (the eclipse setting); results are
    /// `(index, score)` pairs in ascending score order.
    pub fn top_k_by_weighted_sum(
        &self,
        points: &[Point],
        weights: &[f64],
        k: usize,
    ) -> Vec<(usize, f64)> {
        assert_eq!(points.len(), self.len, "point slice mismatch");
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        struct Candidate<'a> {
            score: f64,
            node: Option<&'a Node>,
            point: Option<usize>,
        }
        impl PartialEq for Candidate<'_> {
            fn eq(&self, other: &Self) -> bool {
                self.score.total_cmp(&other.score).is_eq()
            }
        }
        impl Eq for Candidate<'_> {}
        impl PartialOrd for Candidate<'_> {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Candidate<'_> {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.score.total_cmp(&other.score)
            }
        }

        let mut out = Vec::new();
        if k == 0 {
            return out;
        }
        let Some(root) = &self.root else {
            return out;
        };
        let mut heap: BinaryHeap<Reverse<Candidate<'_>>> = BinaryHeap::new();
        heap.push(Reverse(Candidate {
            score: root.bbox().min_weighted_sum(weights),
            node: Some(root),
            point: None,
        }));
        while let Some(Reverse(cand)) = heap.pop() {
            if let Some(i) = cand.point {
                out.push((i, cand.score));
                if out.len() == k {
                    break;
                }
                continue;
            }
            match cand.node.expect("candidate must carry node or point") {
                Node::Leaf { entries, .. } => {
                    for &i in entries {
                        heap.push(Reverse(Candidate {
                            score: points[i].weighted_sum(weights),
                            node: None,
                            point: Some(i),
                        }));
                    }
                }
                Node::Internal { children, .. } => {
                    for c in children {
                        heap.push(Reverse(Candidate {
                            score: c.bbox().min_weighted_sum(weights),
                            node: Some(c),
                            point: None,
                        }));
                    }
                }
            }
        }
        out
    }
}

/// Recursively partitions `ids` (indices into `points`) into groups of at
/// most `capacity` points using the STR strategy: sort by the current axis,
/// cut into vertical slabs, recurse on the next axis within each slab.
fn str_partition(
    points: &[Point],
    mut ids: Vec<usize>,
    capacity: usize,
    axis: usize,
) -> Vec<Vec<usize>> {
    if ids.len() <= capacity {
        return vec![ids];
    }
    let dim = points[ids[0]].dim();
    let n = ids.len();
    let num_leaves = n.div_ceil(capacity);
    if axis + 1 >= dim {
        // Last axis: sort and chop into leaf-sized runs.
        ids.sort_by(|&a, &b| points[a].coord(axis).total_cmp(&points[b].coord(axis)));
        return ids.chunks(capacity).map(|c| c.to_vec()).collect();
    }
    // Number of slabs along this axis: ceil((num_leaves)^(1/(dim-axis))).
    let remaining_axes = (dim - axis) as f64;
    let slabs = (num_leaves as f64).powf(1.0 / remaining_axes).ceil() as usize;
    let slabs = slabs.max(1);
    let slab_size = n.div_ceil(slabs);
    ids.sort_by(|&a, &b| points[a].coord(axis).total_cmp(&points[b].coord(axis)));
    let mut out = Vec::new();
    for chunk in ids.chunks(slab_size) {
        out.extend(str_partition(points, chunk.to_vec(), capacity, axis + 1));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, d: usize, seed: u64) -> Vec<Point> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new((0..d).map(|_| rng.gen_range(0.0..1.0)).collect()))
            .collect()
    }

    #[test]
    fn empty_tree() {
        let pts: Vec<Point> = Vec::new();
        let tree = RTree::bulk_load(&pts);
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 0);
        assert_eq!(
            tree.range_query(&pts, &BoundingBox::new(vec![0.0], vec![1.0])),
            Vec::<usize>::new()
        );
        assert!(tree.knn(&pts, &Point::new(vec![0.5]), 3).is_empty());
    }

    #[test]
    fn single_point() {
        let pts = vec![Point::new(vec![0.5, 0.5])];
        let tree = RTree::bulk_load(&pts);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.height(), 1);
        let q = BoundingBox::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        assert_eq!(tree.range_query(&pts, &q), vec![0]);
        let nn = tree.knn(&pts, &Point::new(vec![0.0, 0.0]), 1);
        assert_eq!(nn[0].0, 0);
    }

    #[test]
    fn range_query_matches_linear_scan() {
        let pts = random_points(500, 2, 11);
        let tree = RTree::bulk_load(&pts);
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        for _ in 0..20 {
            let x0 = rng.gen_range(0.0..0.8);
            let y0 = rng.gen_range(0.0..0.8);
            let q = BoundingBox::new(vec![x0, y0], vec![x0 + 0.2, y0 + 0.2]);
            let expected: Vec<usize> = (0..pts.len())
                .filter(|&i| q.contains_point(&pts[i]))
                .collect();
            assert_eq!(tree.range_query(&pts, &q), expected);
        }
    }

    #[test]
    fn knn_matches_linear_scan() {
        for d in [2, 3, 5] {
            let pts = random_points(300, d, 7 + d as u64);
            let tree = RTree::bulk_load(&pts);
            let q = Point::new(vec![0.5; d]);
            let got = tree.knn(&pts, &q, 10);
            let mut expected: Vec<(usize, f64)> = (0..pts.len())
                .map(|i| (i, pts[i].l2_distance(&q)))
                .collect();
            expected.sort_by(|a, b| a.1.total_cmp(&b.1));
            expected.truncate(10);
            assert_eq!(got.len(), 10);
            for (g, e) in got.iter().zip(expected.iter()) {
                assert!((g.1 - e.1).abs() < 1e-12, "distance mismatch in dim {d}");
            }
        }
    }

    #[test]
    fn knn_returns_all_points_when_k_exceeds_n() {
        let pts = random_points(5, 2, 3);
        let tree = RTree::bulk_load(&pts);
        let got = tree.knn(&pts, &Point::new(vec![0.0, 0.0]), 50);
        assert_eq!(got.len(), 5);
        // Ascending order.
        for w in got.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn weighted_top_k_matches_linear_scan() {
        let pts = random_points(400, 3, 21);
        let tree = RTree::bulk_load(&pts);
        let weights = [2.0, 1.0, 0.5];
        let got = tree.top_k_by_weighted_sum(&pts, &weights, 7);
        let mut expected: Vec<(usize, f64)> = (0..pts.len())
            .map(|i| (i, pts[i].weighted_sum(&weights)))
            .collect();
        expected.sort_by(|a, b| a.1.total_cmp(&b.1));
        expected.truncate(7);
        assert_eq!(got.len(), 7);
        for (g, e) in got.iter().zip(expected.iter()) {
            assert!((g.1 - e.1).abs() < 1e-12);
        }
    }

    #[test]
    fn tree_height_grows_logarithmically() {
        let pts = random_points(2000, 2, 5);
        let tree = RTree::bulk_load_with_capacity(&pts, 8);
        // 2000 points at fanout 8: expect height around log_8(2000/8) + 1 ≈ 4.
        assert!(
            tree.height() >= 3 && tree.height() <= 6,
            "height {}",
            tree.height()
        );
        assert_eq!(tree.node_capacity(), 8);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_tiny_capacity() {
        let _ = RTree::bulk_load_with_capacity(&[Point::new(vec![0.0])], 1);
    }
}
