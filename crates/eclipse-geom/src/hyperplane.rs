//! Hyperplanes and dual lines.
//!
//! Two families of objects are needed by the eclipse index structures of §IV
//! of the paper:
//!
//! * [`DualLine`] — the dual of a two-dimensional point `p = (a, b)`, namely
//!   the line `y = a·x − b` (de Berg et al.'s duality transform).  The paper's
//!   Order Vector / Intersection indexes are built over these lines.
//! * [`Hyperplane`] — a general affine functional `f(x) = Σ coeffs[i]·x[i] +
//!   offset` over some k-dimensional space, interpreted as the hyperplane
//!   `f(x) = 0`.  The *intersection hyperplanes* of the high-dimensional
//!   index (the loci in weight-ratio space where two points have equal score)
//!   are represented this way, as are the cells tests used by the line
//!   quadtree and the cutting tree.

use eclipse_persist::{enc, Cursor, PersistError, PersistResult};
use serde::{Deserialize, Serialize};

use crate::approx::EPS;
use crate::point::{BoundingBox, Point};

/// The dual line `y = slope · x − intercept_sub` of a 2-D point
/// `(slope, intercept_sub)`.
///
/// For a primal point `p = (p[1], p[2])` the paper uses the dual line
/// `y = p[1]·x − p[2]`; evaluating it at `x = −r` gives `−S(p)` for the
/// weight-ratio `r`, so "closer to the x-axis" in the dual corresponds to
/// "smaller score" in the primal.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DualLine {
    /// Slope of the dual line (= first primal coordinate `p[1]`).
    pub slope: f64,
    /// Subtracted intercept (= second primal coordinate `p[2]`); the line is
    /// `y = slope·x − intercept_sub`.
    pub intercept_sub: f64,
}

impl DualLine {
    /// Builds the dual line of a 2-D point.
    ///
    /// # Panics
    /// Panics if the point is not two-dimensional.
    pub fn from_point(p: &Point) -> Self {
        assert_eq!(p.dim(), 2, "DualLine requires a 2-D point");
        DualLine {
            slope: p.coord(0),
            intercept_sub: p.coord(1),
        }
    }

    /// Evaluates the line at abscissa `x`.
    #[inline]
    pub fn value_at(&self, x: f64) -> f64 {
        self.slope * x - self.intercept_sub
    }

    /// The primal score `S(p)` of the underlying point for weight-ratio `r`
    /// (i.e. weight vector `⟨r, 1⟩`): `S(p) = r·p[1] + p[2] = −value_at(−r)`.
    #[inline]
    pub fn score_at_ratio(&self, r: f64) -> f64 {
        r * self.slope + self.intercept_sub
    }

    /// The x-coordinate of the intersection with another dual line, or
    /// `None` if the lines are parallel (equal slopes).
    pub fn intersection_x(&self, other: &DualLine) -> Option<f64> {
        let ds = self.slope - other.slope;
        if ds.abs() <= EPS {
            return None;
        }
        Some((self.intercept_sub - other.intercept_sub) / ds)
    }

    /// Recovers the primal point.
    pub fn to_point(&self) -> Point {
        Point::new(vec![self.slope, self.intercept_sub])
    }
}

/// An affine functional `f(x) = Σ coeffs[i]·x[i] + offset` over a
/// k-dimensional space, interpreted as the hyperplane `f(x) = 0`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Hyperplane {
    coeffs: Box<[f64]>,
    offset: f64,
}

impl Hyperplane {
    /// Creates a hyperplane from its coefficients and offset.
    ///
    /// # Panics
    /// Panics if `coeffs` is empty.
    pub fn new(coeffs: Vec<f64>, offset: f64) -> Self {
        assert!(
            !coeffs.is_empty(),
            "a Hyperplane needs at least 1 coefficient"
        );
        Hyperplane {
            coeffs: coeffs.into_boxed_slice(),
            offset,
        }
    }

    /// Dimensionality of the ambient space.
    #[inline]
    pub fn dim(&self) -> usize {
        self.coeffs.len()
    }

    /// The coefficient vector.
    #[inline]
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// The constant offset.
    #[inline]
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Evaluates the functional at `x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.dim()`.
    pub fn eval(&self, x: &[f64]) -> f64 {
        assert_eq!(
            x.len(),
            self.dim(),
            "dimension mismatch in Hyperplane::eval"
        );
        self.coeffs
            .iter()
            .zip(x.iter())
            .map(|(c, v)| c * v)
            .sum::<f64>()
            + self.offset
    }

    /// Returns `true` if the hyperplane is degenerate (all coefficients are
    /// numerically zero) — e.g. the "intersection hyperplane" of two points
    /// with identical non-last coordinates.
    pub fn is_degenerate(&self) -> bool {
        self.coeffs.iter().all(|c| c.abs() <= EPS)
    }

    /// Minimum of the functional over an axis-aligned box.
    pub fn min_over_box(&self, bbox: &BoundingBox) -> f64 {
        assert_eq!(bbox.dim(), self.dim(), "dimension mismatch in min_over_box");
        bbox.min_weighted_sum(&self.coeffs) + self.offset
    }

    /// Maximum of the functional over an axis-aligned box.
    pub fn max_over_box(&self, bbox: &BoundingBox) -> f64 {
        assert_eq!(bbox.dim(), self.dim(), "dimension mismatch in max_over_box");
        bbox.max_weighted_sum(&self.coeffs) + self.offset
    }

    /// Returns `true` if the hyperplane `f(x) = 0` intersects the closed box,
    /// i.e. the functional changes sign (or touches zero) over the box.
    ///
    /// Degenerate hyperplanes intersect a box only if their offset is zero
    /// (within tolerance): the functional is constant, so it either vanishes
    /// everywhere or nowhere.
    pub fn intersects_box(&self, bbox: &BoundingBox) -> bool {
        if self.is_degenerate() {
            return self.offset.abs() <= EPS;
        }
        let lo = self.min_over_box(bbox);
        let hi = self.max_over_box(bbox);
        lo <= EPS && hi >= -EPS
    }

    /// Returns `true` if the hyperplane strictly crosses the *interior* of
    /// the box (sign change with margin), excluding mere touches of the
    /// boundary.  Used when replaying order-vector swaps where boundary
    /// contacts must not count as order changes.
    pub fn crosses_box_interior(&self, bbox: &BoundingBox) -> bool {
        if self.is_degenerate() {
            return false;
        }
        let lo = self.min_over_box(bbox);
        let hi = self.max_over_box(bbox);
        lo < -EPS && hi > EPS
    }
}

/// A structure-of-arrays slab of hyperplanes sharing one ambient
/// dimensionality: all coefficient rows in one contiguous buffer plus per-row
/// offsets and precomputed degeneracy flags.
///
/// This is the storage format of the intersection-index hot path: the
/// box-vs-hyperplane sign tests run over dense `f64` rows with a branchless
/// min/max accumulation instead of chasing per-[`Hyperplane`] boxed slices,
/// and the min and max are computed in a single pass.  The accumulation
/// visits axes in order and adds the offset last, exactly like
/// [`Hyperplane::min_over_box`] / [`Hyperplane::max_over_box`], so the slab
/// predicates return the same answers as the per-object ones (up to the sign
/// of zero, which never changes a sum).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HyperplaneSlab {
    dim: usize,
    /// Row-major coefficient rows: row `i` occupies `[i·dim, (i+1)·dim)`.
    coeffs: Vec<f64>,
    offsets: Vec<f64>,
    /// Rows whose coefficients are all within `EPS` of zero, replicating the
    /// degenerate special case of [`Hyperplane::intersects_box`].
    degenerate: Vec<bool>,
}

impl HyperplaneSlab {
    /// An empty slab for `dim`-dimensional hyperplanes.
    ///
    /// # Panics
    /// Panics if `dim` is zero.
    pub fn new(dim: usize) -> Self {
        assert!(dim >= 1, "a HyperplaneSlab needs at least 1 dimension");
        HyperplaneSlab {
            dim,
            coeffs: Vec::new(),
            offsets: Vec::new(),
            degenerate: Vec::new(),
        }
    }

    /// An empty slab with capacity for `n` rows.
    pub fn with_capacity(dim: usize, n: usize) -> Self {
        let mut slab = HyperplaneSlab::new(dim);
        slab.coeffs.reserve(n * dim);
        slab.offsets.reserve(n);
        slab.degenerate.reserve(n);
        slab
    }

    /// Builds a slab from a slice of hyperplanes (an empty slice yields a
    /// slab of dimension 1 with no rows).
    ///
    /// # Panics
    /// Panics if the hyperplanes have mixed dimensionality.
    pub fn from_hyperplanes(hyperplanes: &[Hyperplane]) -> Self {
        let dim = hyperplanes.first().map_or(1, Hyperplane::dim);
        let mut slab = HyperplaneSlab::with_capacity(dim, hyperplanes.len());
        for h in hyperplanes {
            slab.push(h.coeffs(), h.offset());
        }
        slab
    }

    /// Appends one hyperplane row.
    ///
    /// # Panics
    /// Panics if `coeffs.len()` differs from the slab dimensionality.
    pub fn push(&mut self, coeffs: &[f64], offset: f64) {
        assert_eq!(coeffs.len(), self.dim, "row dimensionality mismatch");
        self.coeffs.extend_from_slice(coeffs);
        self.offsets.push(offset);
        self.degenerate.push(coeffs.iter().all(|c| c.abs() <= EPS));
    }

    /// Appends all rows of another slab of the same dimensionality.
    ///
    /// # Panics
    /// Panics if the dimensionalities differ.
    pub fn extend_from(&mut self, other: &HyperplaneSlab) {
        assert_eq!(other.dim, self.dim, "slab dimensionality mismatch");
        self.coeffs.extend_from_slice(&other.coeffs);
        self.offsets.extend_from_slice(&other.offsets);
        self.degenerate.extend_from_slice(&other.degenerate);
    }

    /// Number of hyperplane rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// `true` when the slab holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Dimensionality of the ambient space.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Heap bytes owned by the slab's three buffers, counted at their
    /// *capacity* (what the allocator actually handed out), not their length.
    pub fn heap_bytes(&self) -> usize {
        self.coeffs.capacity() * std::mem::size_of::<f64>()
            + self.offsets.capacity() * std::mem::size_of::<f64>()
            + self.degenerate.capacity() * std::mem::size_of::<bool>()
    }

    /// The coefficient row of hyperplane `i`.
    #[inline]
    pub fn coeffs_row(&self, i: usize) -> &[f64] {
        &self.coeffs[i * self.dim..(i + 1) * self.dim]
    }

    /// The constant offset of hyperplane `i`.
    #[inline]
    pub fn offset(&self, i: usize) -> f64 {
        self.offsets[i]
    }

    /// Whether row `i` is degenerate (all coefficients numerically zero).
    #[inline]
    pub fn is_degenerate(&self, i: usize) -> bool {
        self.degenerate[i]
    }

    /// Minimum and maximum of functional `i` over the box `[lo, hi]`, in one
    /// branchless pass over the coefficient row.
    ///
    /// # Panics
    /// Panics (in debug builds) if the corner slices do not match the slab
    /// dimensionality; release builds index out of bounds instead.
    #[inline]
    pub fn min_max_over_box(&self, i: usize, lo: &[f64], hi: &[f64]) -> (f64, f64) {
        debug_assert_eq!(lo.len(), self.dim, "corner dimensionality mismatch");
        debug_assert_eq!(hi.len(), self.dim, "corner dimensionality mismatch");
        let row = &self.coeffs[i * self.dim..(i + 1) * self.dim];
        let mut min = 0.0f64;
        let mut max = 0.0f64;
        for j in 0..row.len() {
            let a = row[j] * lo[j];
            let b = row[j] * hi[j];
            min += a.min(b);
            max += a.max(b);
        }
        (min + self.offsets[i], max + self.offsets[i])
    }

    /// Whether hyperplane `i` intersects the closed box `[lo, hi]` — the slab
    /// counterpart of [`Hyperplane::intersects_box`], returning the same
    /// answer.
    #[inline]
    pub fn intersects_box(&self, i: usize, lo: &[f64], hi: &[f64]) -> bool {
        if self.degenerate[i] {
            return self.offsets[i].abs() <= EPS;
        }
        let (min, max) = self.min_max_over_box(i, lo, hi);
        min <= EPS && max >= -EPS
    }

    /// Minimum and maximum of four functionals over the box `[lo, hi]` at
    /// once — the vectorized core of the batched sign tests.
    ///
    /// The accumulation is hand-unrolled into four independent lanes: the
    /// scalar kernel ([`HyperplaneSlab::min_max_over_box`]) is a serial
    /// floating-point min/max reduction the compiler must not reassociate,
    /// but four *independent* rows give it four parallel dependency chains,
    /// which the SLP autovectorizer packs into `f64x2`/`f64x4` `min`/`max`
    /// vector ops.  Each lane performs exactly the scalar kernel's operation
    /// sequence (axes in ascending order, offset added last), so the results
    /// are bit-identical to four scalar calls — batched and scalar filters
    /// always agree.
    ///
    /// Rows must not be degenerate-special-cased by the caller beforehand;
    /// this routine computes raw min/max only (degeneracy is a separate
    /// offset-only test).
    #[inline]
    fn min_max_over_box4(&self, rows: [usize; 4], lo: &[f64], hi: &[f64]) -> ([f64; 4], [f64; 4]) {
        let d = self.dim;
        let r0 = &self.coeffs[rows[0] * d..rows[0] * d + d];
        let r1 = &self.coeffs[rows[1] * d..rows[1] * d + d];
        let r2 = &self.coeffs[rows[2] * d..rows[2] * d + d];
        let r3 = &self.coeffs[rows[3] * d..rows[3] * d + d];
        let mut min = [0.0f64; 4];
        let mut max = [0.0f64; 4];
        for j in 0..d {
            let l = lo[j];
            let h = hi[j];
            let a0 = r0[j] * l;
            let b0 = r0[j] * h;
            let a1 = r1[j] * l;
            let b1 = r1[j] * h;
            let a2 = r2[j] * l;
            let b2 = r2[j] * h;
            let a3 = r3[j] * l;
            let b3 = r3[j] * h;
            min[0] += a0.min(b0);
            min[1] += a1.min(b1);
            min[2] += a2.min(b2);
            min[3] += a3.min(b3);
            max[0] += a0.max(b0);
            max[1] += a1.max(b1);
            max[2] += a2.max(b2);
            max[3] += a3.max(b3);
        }
        for (lane, &row) in rows.iter().enumerate() {
            min[lane] += self.offsets[row];
            max[lane] += self.offsets[row];
        }
        (min, max)
    }

    /// Appends to `out` every id from `ids` whose hyperplane intersects the
    /// closed box `[lo, hi]`, preserving input order — the batched
    /// counterpart of per-id [`HyperplaneSlab::intersects_box`] loops, and
    /// the partition kernel of the arena tree builders.
    ///
    /// Ids are processed four at a time through the private
    /// `min_max_over_box4` lane kernel; blocks containing a degenerate
    /// row (and the remainder) fall back to the scalar predicate.  The
    /// decisions are bit-identical to the scalar loop in all cases.
    pub fn filter_intersecting_into(
        &self,
        ids: &[u32],
        lo: &[f64],
        hi: &[f64],
        out: &mut Vec<u32>,
    ) {
        // An empty slab keeps its placeholder dimensionality (1), so the
        // corner check only applies when there are rows to test.
        debug_assert!(
            self.is_empty() || (lo.len() == self.dim && hi.len() == self.dim),
            "corner dimensionality mismatch"
        );
        let mut blocks = ids.chunks_exact(4);
        for block in &mut blocks {
            let rows = [
                block[0] as usize,
                block[1] as usize,
                block[2] as usize,
                block[3] as usize,
            ];
            if rows.iter().any(|&r| self.degenerate[r]) {
                for &id in block {
                    if self.intersects_box(id as usize, lo, hi) {
                        out.push(id);
                    }
                }
                continue;
            }
            let (min, max) = self.min_max_over_box4(rows, lo, hi);
            for (lane, &id) in block.iter().enumerate() {
                if min[lane] <= EPS && max[lane] >= -EPS {
                    out.push(id);
                }
            }
        }
        for &id in blocks.remainder() {
            if self.intersects_box(id as usize, lo, hi) {
                out.push(id);
            }
        }
    }

    /// Appends to `out` the id of every row intersecting the closed box
    /// `[lo, hi]`, in ascending order — the whole-slab sweep used to seed
    /// tree construction with the hyperplanes crossing the root cell.  Runs
    /// the same four-lane kernel as
    /// [`HyperplaneSlab::filter_intersecting_into`] over consecutive rows.
    pub fn filter_all_intersecting_into(&self, lo: &[f64], hi: &[f64], out: &mut Vec<u32>) {
        // An empty slab keeps its placeholder dimensionality (1), so the
        // corner check only applies when there are rows to test.
        debug_assert!(
            self.is_empty() || (lo.len() == self.dim && hi.len() == self.dim),
            "corner dimensionality mismatch"
        );
        let n = self.len();
        let mut i = 0;
        while i + 4 <= n {
            let rows = [i, i + 1, i + 2, i + 3];
            if rows.iter().any(|&r| self.degenerate[r]) {
                for r in rows {
                    if self.intersects_box(r, lo, hi) {
                        out.push(r as u32);
                    }
                }
            } else {
                let (min, max) = self.min_max_over_box4(rows, lo, hi);
                for (lane, r) in rows.into_iter().enumerate() {
                    if min[lane] <= EPS && max[lane] >= -EPS {
                        out.push(r as u32);
                    }
                }
            }
            i += 4;
        }
        while i < n {
            if self.intersects_box(i, lo, hi) {
                out.push(i as u32);
            }
            i += 1;
        }
    }

    /// Materializes row `i` as an owned [`Hyperplane`].
    pub fn hyperplane(&self, i: usize) -> Hyperplane {
        Hyperplane::new(self.coeffs_row(i).to_vec(), self.offsets[i])
    }

    /// Appends the slab's snapshot encoding: dimensionality, row count, the
    /// coefficient buffer and the offsets, all as IEEE-754 bit patterns so
    /// the byte image is stable across encode/decode cycles.  The degeneracy
    /// flags are derived data and are recomputed on decode.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        enc::put_u32(out, self.dim as u32);
        enc::put_usize(out, self.len());
        for &c in &self.coeffs {
            enc::put_f64(out, c);
        }
        for &o in &self.offsets {
            enc::put_f64(out, o);
        }
    }

    /// Decodes a slab previously written by [`HyperplaneSlab::encode_into`],
    /// consuming exactly its bytes from `cur`.
    ///
    /// # Errors
    /// A typed [`PersistError`] on truncation, a zero dimensionality or a
    /// row count larger than the remaining bytes (which is validated before
    /// any buffer is allocated); arbitrary input never panics.
    pub fn decode(cur: &mut Cursor<'_>) -> PersistResult<Self> {
        let dim = cur.u32()? as usize;
        if dim == 0 {
            return Err(PersistError::Malformed(
                "hyperplane slab dimensionality must be ≥ 1".to_string(),
            ));
        }
        // Every row occupies dim + 1 f64s; the count is validated against the
        // bytes actually present before the buffers are reserved.
        let n = cur.count((dim + 1).saturating_mul(8))?;
        let coeffs = cur.f64_vec(n.checked_mul(dim).ok_or_else(|| {
            PersistError::Malformed(format!("{n} rows of {dim} coefficients overflow"))
        })?)?;
        let offsets = cur.f64_vec(n)?;
        let degenerate = coeffs
            .chunks_exact(dim)
            .map(|row| row.iter().all(|c| c.abs() <= EPS))
            .collect();
        Ok(HyperplaneSlab {
            dim,
            coeffs,
            offsets,
            degenerate,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dual_line_matches_paper_example4() {
        // Example 4: p1(1,6) -> y = x - 6, p2(4,4) -> y = 4x - 4, p3(6,1) -> y = 6x - 1.
        let p1 = DualLine::from_point(&Point::new(vec![1.0, 6.0]));
        let p2 = DualLine::from_point(&Point::new(vec![4.0, 4.0]));
        let p3 = DualLine::from_point(&Point::new(vec![6.0, 1.0]));
        assert_eq!(p1.value_at(0.0), -6.0);
        assert_eq!(p2.value_at(1.0), 0.0);
        // Intersection abscissae from the paper: p1p2[x] = -2/3, p1p3[x] = -1, p2p3[x] = -1.5.
        assert!((p1.intersection_x(&p2).unwrap() - (-2.0 / 3.0)).abs() < 1e-12);
        assert!((p1.intersection_x(&p3).unwrap() - (-1.0)).abs() < 1e-12);
        assert!((p2.intersection_x(&p3).unwrap() - (-1.5)).abs() < 1e-12);
    }

    #[test]
    fn dual_line_score_relation() {
        // S(p) at ratio r equals -value_at(-r).
        let p = Point::new(vec![4.0, 4.0]);
        let line = DualLine::from_point(&p);
        for r in [0.25, 1.0, 2.0] {
            let s = p.weighted_sum(&[r, 1.0]);
            assert!((line.score_at_ratio(r) - s).abs() < 1e-12);
            assert!((-(line.value_at(-r)) - s).abs() < 1e-12);
        }
    }

    #[test]
    fn dual_line_parallel_lines_have_no_intersection() {
        let a = DualLine::from_point(&Point::new(vec![2.0, 1.0]));
        let b = DualLine::from_point(&Point::new(vec![2.0, 5.0]));
        assert!(a.intersection_x(&b).is_none());
        assert_eq!(a.to_point(), Point::new(vec![2.0, 1.0]));
    }

    #[test]
    fn hyperplane_eval_and_accessors() {
        let h = Hyperplane::new(vec![1.0, -2.0], 3.0);
        assert_eq!(h.dim(), 2);
        assert_eq!(h.coeffs(), &[1.0, -2.0]);
        assert_eq!(h.offset(), 3.0);
        assert_eq!(h.eval(&[1.0, 2.0]), 0.0);
        assert_eq!(h.eval(&[0.0, 0.0]), 3.0);
        assert!(!h.is_degenerate());
        assert!(Hyperplane::new(vec![0.0, 0.0], 1.0).is_degenerate());
    }

    #[test]
    fn hyperplane_box_intersection() {
        // x - y = 0 crosses the unit box, misses a box shifted above the diagonal.
        let h = Hyperplane::new(vec![1.0, -1.0], 0.0);
        let unit = BoundingBox::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let above = BoundingBox::new(vec![0.0, 2.0], vec![1.0, 3.0]);
        assert!(h.intersects_box(&unit));
        assert!(!h.intersects_box(&above));
        assert!(h.crosses_box_interior(&unit));
        // Touching only a corner: intersects but does not cross the interior.
        let corner = BoundingBox::new(vec![1.0, 0.0], vec![2.0, 1.0]);
        assert!(h.intersects_box(&corner));
        assert!(!h.crosses_box_interior(&corner));
    }

    #[test]
    fn hyperplane_min_max_over_box() {
        let h = Hyperplane::new(vec![2.0, -1.0], 1.0);
        let b = BoundingBox::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        assert_eq!(h.min_over_box(&b), 2.0 * 0.0 - 1.0 * 1.0 + 1.0);
        assert_eq!(h.max_over_box(&b), 2.0 * 1.0 - 1.0 * 0.0 + 1.0);
    }

    #[test]
    fn degenerate_hyperplane_box_rules() {
        let zero_everywhere = Hyperplane::new(vec![0.0], 0.0);
        let never_zero = Hyperplane::new(vec![0.0], 2.0);
        let b = BoundingBox::new(vec![0.0], vec![1.0]);
        assert!(zero_everywhere.intersects_box(&b));
        assert!(!never_zero.intersects_box(&b));
        assert!(!zero_everywhere.crosses_box_interior(&b));
    }

    #[test]
    fn slab_agrees_with_per_object_predicates() {
        let hs = vec![
            Hyperplane::new(vec![1.0, -1.0], 0.0),
            Hyperplane::new(vec![0.0, 1.0], -0.25),
            Hyperplane::new(vec![2.0, -1.0], 1.0),
            Hyperplane::new(vec![0.0, 0.0], 0.0), // degenerate, everywhere
            Hyperplane::new(vec![0.0, 0.0], 2.0), // degenerate, nowhere
            Hyperplane::new(vec![1.0, 1.0], -10.0),
        ];
        let slab = HyperplaneSlab::from_hyperplanes(&hs);
        assert_eq!(slab.len(), hs.len());
        assert_eq!(slab.dim(), 2);
        assert!(!slab.is_empty());
        assert!(slab.is_degenerate(3) && slab.is_degenerate(4));
        let boxes = [
            BoundingBox::new(vec![0.0, 0.0], vec![1.0, 1.0]),
            BoundingBox::new(vec![0.0, 2.0], vec![1.0, 3.0]),
            BoundingBox::new(vec![-2.0, -1.5], vec![0.5, 0.25]),
        ];
        for b in &boxes {
            for (i, h) in hs.iter().enumerate() {
                assert_eq!(
                    slab.intersects_box(i, b.lo(), b.hi()),
                    h.intersects_box(b),
                    "row {i}, box {b:?}"
                );
                if !slab.is_degenerate(i) {
                    let (min, max) = slab.min_max_over_box(i, b.lo(), b.hi());
                    assert_eq!(min, h.min_over_box(b), "row {i}");
                    assert_eq!(max, h.max_over_box(b), "row {i}");
                }
                assert_eq!(slab.hyperplane(i), *h);
            }
        }
    }

    #[test]
    fn slab_snapshot_round_trips_bit_exactly() {
        let mut slab = HyperplaneSlab::new(3);
        slab.push(&[1.0, -2.0, 0.5], 3.0);
        slab.push(&[0.0, 0.0, 0.0], 0.0); // degenerate
        slab.push(&[-0.0, f64::INFINITY, f64::NEG_INFINITY], -0.0); // edge floats
        slab.push(&[f64::MIN_POSITIVE, 1e308, -1e-308], f64::MAX);
        let mut bytes = Vec::new();
        slab.encode_into(&mut bytes);
        let mut cur = Cursor::new(&bytes);
        let back = HyperplaneSlab::decode(&mut cur).unwrap();
        cur.finish().unwrap();
        assert_eq!(back.dim(), slab.dim());
        assert_eq!(back.len(), slab.len());
        for i in 0..slab.len() {
            for (a, b) in back.coeffs_row(i).iter().zip(slab.coeffs_row(i)) {
                assert_eq!(a.to_bits(), b.to_bits(), "row {i}");
            }
            assert_eq!(back.offset(i).to_bits(), slab.offset(i).to_bits());
            assert_eq!(back.is_degenerate(i), slab.is_degenerate(i), "row {i}");
        }
        // Re-encoding the decoded slab reproduces the bytes exactly.
        let mut again = Vec::new();
        back.encode_into(&mut again);
        assert_eq!(again, bytes);
    }

    #[test]
    fn slab_decode_rejects_hostile_input() {
        // Zero dimensionality.
        let mut bytes = Vec::new();
        enc::put_u32(&mut bytes, 0);
        enc::put_usize(&mut bytes, 0);
        assert!(HyperplaneSlab::decode(&mut Cursor::new(&bytes)).is_err());
        // Row count far beyond the remaining bytes is rejected before any
        // allocation.
        let mut bytes = Vec::new();
        enc::put_u32(&mut bytes, 2);
        enc::put_u64(&mut bytes, u64::MAX);
        assert!(matches!(
            HyperplaneSlab::decode(&mut Cursor::new(&bytes)),
            Err(PersistError::Malformed(_))
        ));
        // Truncated coefficient run.
        let mut bytes = Vec::new();
        HyperplaneSlab::from_hyperplanes(&[Hyperplane::new(vec![1.0, 2.0], 0.5)])
            .encode_into(&mut bytes);
        for cut in 0..bytes.len() {
            assert!(
                HyperplaneSlab::decode(&mut Cursor::new(&bytes[..cut])).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn batched_filters_match_the_scalar_predicate_bit_for_bit() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x4a11e5);
        for dim in [1usize, 2, 3, 5] {
            // Sizes straddling the 4-lane blocking: empty, sub-block, exact
            // blocks, and a remainder tail.
            for n in [0usize, 1, 3, 4, 7, 8, 64, 129] {
                let mut slab = HyperplaneSlab::new(dim);
                for i in 0..n {
                    // Sprinkle degenerate rows (all-zero coefficients) so the
                    // block fallback path is exercised mid-stream.
                    if i % 11 == 5 {
                        slab.push(&vec![0.0; dim], if i % 2 == 0 { 0.0 } else { 1.0 });
                    } else {
                        let row: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
                        slab.push(&row, rng.gen_range(-1.0..1.0));
                    }
                }
                for _ in 0..8 {
                    let lo: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..0.8)).collect();
                    let hi: Vec<f64> = lo.iter().map(|l| l + rng.gen_range(0.0..0.5)).collect();
                    let expected: Vec<u32> = (0..n as u32)
                        .filter(|&i| slab.intersects_box(i as usize, &lo, &hi))
                        .collect();
                    // Whole-slab sweep.
                    let mut got = Vec::new();
                    slab.filter_all_intersecting_into(&lo, &hi, &mut got);
                    assert_eq!(got, expected, "dim {dim}, n {n}");
                    // Gathered-id filter over a shuffled id list preserves
                    // input order and agrees id-for-id with the scalar loop.
                    let mut ids: Vec<u32> = (0..n as u32).rev().collect();
                    ids.extend(0..n as u32); // duplicates are fine: pure filter
                    let scalar: Vec<u32> = ids
                        .iter()
                        .copied()
                        .filter(|&i| slab.intersects_box(i as usize, &lo, &hi))
                        .collect();
                    let mut batched = Vec::new();
                    slab.filter_intersecting_into(&ids, &lo, &hi, &mut batched);
                    assert_eq!(batched, scalar, "dim {dim}, n {n}");
                    // Counting parity: the survivor count matches too (the
                    // property the probe counters rely on).
                    assert_eq!(batched.len(), scalar.len());
                }
            }
        }
    }

    #[test]
    fn slab_push_and_extend() {
        let mut a = HyperplaneSlab::new(2);
        a.push(&[1.0, 2.0], 3.0);
        let mut b = HyperplaneSlab::with_capacity(2, 1);
        b.push(&[0.0, 0.0], 0.5);
        a.extend_from(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.coeffs_row(0), &[1.0, 2.0]);
        assert_eq!(a.offset(1), 0.5);
        assert!(!a.is_degenerate(0));
        assert!(a.is_degenerate(1));
        // The empty slice yields an empty slab.
        assert!(HyperplaneSlab::from_hyperplanes(&[]).is_empty());
    }
}
