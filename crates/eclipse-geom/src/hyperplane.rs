//! Hyperplanes and dual lines.
//!
//! Two families of objects are needed by the eclipse index structures of §IV
//! of the paper:
//!
//! * [`DualLine`] — the dual of a two-dimensional point `p = (a, b)`, namely
//!   the line `y = a·x − b` (de Berg et al.'s duality transform).  The paper's
//!   Order Vector / Intersection indexes are built over these lines.
//! * [`Hyperplane`] — a general affine functional `f(x) = Σ coeffs[i]·x[i] +
//!   offset` over some k-dimensional space, interpreted as the hyperplane
//!   `f(x) = 0`.  The *intersection hyperplanes* of the high-dimensional
//!   index (the loci in weight-ratio space where two points have equal score)
//!   are represented this way, as are the cells tests used by the line
//!   quadtree and the cutting tree.

use serde::{Deserialize, Serialize};

use crate::approx::EPS;
use crate::point::{BoundingBox, Point};

/// The dual line `y = slope · x − intercept_sub` of a 2-D point
/// `(slope, intercept_sub)`.
///
/// For a primal point `p = (p[1], p[2])` the paper uses the dual line
/// `y = p[1]·x − p[2]`; evaluating it at `x = −r` gives `−S(p)` for the
/// weight-ratio `r`, so "closer to the x-axis" in the dual corresponds to
/// "smaller score" in the primal.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DualLine {
    /// Slope of the dual line (= first primal coordinate `p[1]`).
    pub slope: f64,
    /// Subtracted intercept (= second primal coordinate `p[2]`); the line is
    /// `y = slope·x − intercept_sub`.
    pub intercept_sub: f64,
}

impl DualLine {
    /// Builds the dual line of a 2-D point.
    ///
    /// # Panics
    /// Panics if the point is not two-dimensional.
    pub fn from_point(p: &Point) -> Self {
        assert_eq!(p.dim(), 2, "DualLine requires a 2-D point");
        DualLine {
            slope: p.coord(0),
            intercept_sub: p.coord(1),
        }
    }

    /// Evaluates the line at abscissa `x`.
    #[inline]
    pub fn value_at(&self, x: f64) -> f64 {
        self.slope * x - self.intercept_sub
    }

    /// The primal score `S(p)` of the underlying point for weight-ratio `r`
    /// (i.e. weight vector `⟨r, 1⟩`): `S(p) = r·p[1] + p[2] = −value_at(−r)`.
    #[inline]
    pub fn score_at_ratio(&self, r: f64) -> f64 {
        r * self.slope + self.intercept_sub
    }

    /// The x-coordinate of the intersection with another dual line, or
    /// `None` if the lines are parallel (equal slopes).
    pub fn intersection_x(&self, other: &DualLine) -> Option<f64> {
        let ds = self.slope - other.slope;
        if ds.abs() <= EPS {
            return None;
        }
        Some((self.intercept_sub - other.intercept_sub) / ds)
    }

    /// Recovers the primal point.
    pub fn to_point(&self) -> Point {
        Point::new(vec![self.slope, self.intercept_sub])
    }
}

/// An affine functional `f(x) = Σ coeffs[i]·x[i] + offset` over a
/// k-dimensional space, interpreted as the hyperplane `f(x) = 0`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Hyperplane {
    coeffs: Box<[f64]>,
    offset: f64,
}

impl Hyperplane {
    /// Creates a hyperplane from its coefficients and offset.
    ///
    /// # Panics
    /// Panics if `coeffs` is empty.
    pub fn new(coeffs: Vec<f64>, offset: f64) -> Self {
        assert!(
            !coeffs.is_empty(),
            "a Hyperplane needs at least 1 coefficient"
        );
        Hyperplane {
            coeffs: coeffs.into_boxed_slice(),
            offset,
        }
    }

    /// Dimensionality of the ambient space.
    #[inline]
    pub fn dim(&self) -> usize {
        self.coeffs.len()
    }

    /// The coefficient vector.
    #[inline]
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// The constant offset.
    #[inline]
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Evaluates the functional at `x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.dim()`.
    pub fn eval(&self, x: &[f64]) -> f64 {
        assert_eq!(
            x.len(),
            self.dim(),
            "dimension mismatch in Hyperplane::eval"
        );
        self.coeffs
            .iter()
            .zip(x.iter())
            .map(|(c, v)| c * v)
            .sum::<f64>()
            + self.offset
    }

    /// Returns `true` if the hyperplane is degenerate (all coefficients are
    /// numerically zero) — e.g. the "intersection hyperplane" of two points
    /// with identical non-last coordinates.
    pub fn is_degenerate(&self) -> bool {
        self.coeffs.iter().all(|c| c.abs() <= EPS)
    }

    /// Minimum of the functional over an axis-aligned box.
    pub fn min_over_box(&self, bbox: &BoundingBox) -> f64 {
        assert_eq!(bbox.dim(), self.dim(), "dimension mismatch in min_over_box");
        bbox.min_weighted_sum(&self.coeffs) + self.offset
    }

    /// Maximum of the functional over an axis-aligned box.
    pub fn max_over_box(&self, bbox: &BoundingBox) -> f64 {
        assert_eq!(bbox.dim(), self.dim(), "dimension mismatch in max_over_box");
        bbox.max_weighted_sum(&self.coeffs) + self.offset
    }

    /// Returns `true` if the hyperplane `f(x) = 0` intersects the closed box,
    /// i.e. the functional changes sign (or touches zero) over the box.
    ///
    /// Degenerate hyperplanes intersect a box only if their offset is zero
    /// (within tolerance): the functional is constant, so it either vanishes
    /// everywhere or nowhere.
    pub fn intersects_box(&self, bbox: &BoundingBox) -> bool {
        if self.is_degenerate() {
            return self.offset.abs() <= EPS;
        }
        let lo = self.min_over_box(bbox);
        let hi = self.max_over_box(bbox);
        lo <= EPS && hi >= -EPS
    }

    /// Returns `true` if the hyperplane strictly crosses the *interior* of
    /// the box (sign change with margin), excluding mere touches of the
    /// boundary.  Used when replaying order-vector swaps where boundary
    /// contacts must not count as order changes.
    pub fn crosses_box_interior(&self, bbox: &BoundingBox) -> bool {
        if self.is_degenerate() {
            return false;
        }
        let lo = self.min_over_box(bbox);
        let hi = self.max_over_box(bbox);
        lo < -EPS && hi > EPS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dual_line_matches_paper_example4() {
        // Example 4: p1(1,6) -> y = x - 6, p2(4,4) -> y = 4x - 4, p3(6,1) -> y = 6x - 1.
        let p1 = DualLine::from_point(&Point::new(vec![1.0, 6.0]));
        let p2 = DualLine::from_point(&Point::new(vec![4.0, 4.0]));
        let p3 = DualLine::from_point(&Point::new(vec![6.0, 1.0]));
        assert_eq!(p1.value_at(0.0), -6.0);
        assert_eq!(p2.value_at(1.0), 0.0);
        // Intersection abscissae from the paper: p1p2[x] = -2/3, p1p3[x] = -1, p2p3[x] = -1.5.
        assert!((p1.intersection_x(&p2).unwrap() - (-2.0 / 3.0)).abs() < 1e-12);
        assert!((p1.intersection_x(&p3).unwrap() - (-1.0)).abs() < 1e-12);
        assert!((p2.intersection_x(&p3).unwrap() - (-1.5)).abs() < 1e-12);
    }

    #[test]
    fn dual_line_score_relation() {
        // S(p) at ratio r equals -value_at(-r).
        let p = Point::new(vec![4.0, 4.0]);
        let line = DualLine::from_point(&p);
        for r in [0.25, 1.0, 2.0] {
            let s = p.weighted_sum(&[r, 1.0]);
            assert!((line.score_at_ratio(r) - s).abs() < 1e-12);
            assert!((-(line.value_at(-r)) - s).abs() < 1e-12);
        }
    }

    #[test]
    fn dual_line_parallel_lines_have_no_intersection() {
        let a = DualLine::from_point(&Point::new(vec![2.0, 1.0]));
        let b = DualLine::from_point(&Point::new(vec![2.0, 5.0]));
        assert!(a.intersection_x(&b).is_none());
        assert_eq!(a.to_point(), Point::new(vec![2.0, 1.0]));
    }

    #[test]
    fn hyperplane_eval_and_accessors() {
        let h = Hyperplane::new(vec![1.0, -2.0], 3.0);
        assert_eq!(h.dim(), 2);
        assert_eq!(h.coeffs(), &[1.0, -2.0]);
        assert_eq!(h.offset(), 3.0);
        assert_eq!(h.eval(&[1.0, 2.0]), 0.0);
        assert_eq!(h.eval(&[0.0, 0.0]), 3.0);
        assert!(!h.is_degenerate());
        assert!(Hyperplane::new(vec![0.0, 0.0], 1.0).is_degenerate());
    }

    #[test]
    fn hyperplane_box_intersection() {
        // x - y = 0 crosses the unit box, misses a box shifted above the diagonal.
        let h = Hyperplane::new(vec![1.0, -1.0], 0.0);
        let unit = BoundingBox::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let above = BoundingBox::new(vec![0.0, 2.0], vec![1.0, 3.0]);
        assert!(h.intersects_box(&unit));
        assert!(!h.intersects_box(&above));
        assert!(h.crosses_box_interior(&unit));
        // Touching only a corner: intersects but does not cross the interior.
        let corner = BoundingBox::new(vec![1.0, 0.0], vec![2.0, 1.0]);
        assert!(h.intersects_box(&corner));
        assert!(!h.crosses_box_interior(&corner));
    }

    #[test]
    fn hyperplane_min_max_over_box() {
        let h = Hyperplane::new(vec![2.0, -1.0], 1.0);
        let b = BoundingBox::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        assert_eq!(h.min_over_box(&b), 2.0 * 0.0 - 1.0 * 1.0 + 1.0);
        assert_eq!(h.max_over_box(&b), 2.0 * 1.0 - 1.0 * 0.0 + 1.0);
    }

    #[test]
    fn degenerate_hyperplane_box_rules() {
        let zero_everywhere = Hyperplane::new(vec![0.0], 0.0);
        let never_zero = Hyperplane::new(vec![0.0], 2.0);
        let b = BoundingBox::new(vec![0.0], vec![1.0]);
        assert!(zero_everywhere.intersects_box(&b));
        assert!(!never_zero.intersects_box(&b));
        assert!(!zero_everywhere.crosses_box_interior(&b));
    }
}
