//! The primal ⇄ dual transform of §IV of the paper.
//!
//! For a point `p = (p[1], …, p[d])` the dual hyperplane is
//! `x_d = p[1]·x_1 + … + p[d−1]·x_{d−1} − p[d]` (de Berg et al. \[12\]).  In the
//! dual space the eclipse query with ratio box `r[j] ∈ [l_j, h_j]` becomes:
//! *find the hyperplanes not dominated by any other hyperplane with respect to
//! the hyperplane `x_d = 0` within the query range `x_j ∈ [−h_j, −l_j]`*.
//!
//! Two views are provided:
//!
//! * [`DualHyperplane`] — the dual of a point, evaluated in dual coordinates
//!   `x` (the paper's presentation, used by the 2-D arrangement and the
//!   worked examples), and
//! * [`score_difference_hyperplane`] — the *intersection hyperplane* of two
//!   points expressed directly in **ratio space** `r = −x` as the locus
//!   `S(p_a)_r = S(p_b)_r`.  The high-dimensional Intersection Indexes (line
//!   quadtree, cutting tree) store these, because the query box
//!   `[l_1,h_1]×…×[l_{d−1},h_{d−1}]` is axis-aligned and positive there.

use crate::hyperplane::Hyperplane;
use crate::point::Point;

/// The dual hyperplane `x_d = Σ_j p[j]·x_j − p[d]` of a d-dimensional point.
#[derive(Clone, Debug, PartialEq)]
pub struct DualHyperplane {
    /// Coefficients `p[1], …, p[d−1]` of the dual hyperplane.
    coeffs: Vec<f64>,
    /// The subtracted constant `p[d]`.
    last: f64,
}

impl DualHyperplane {
    /// Builds the dual hyperplane of a point with `d ≥ 2` dimensions.
    ///
    /// # Panics
    /// Panics if the point has fewer than two dimensions.
    pub fn from_point(p: &Point) -> Self {
        assert!(p.dim() >= 2, "dual transform requires d >= 2");
        DualHyperplane {
            coeffs: p.coords()[..p.dim() - 1].to_vec(),
            last: p.coord(p.dim() - 1),
        }
    }

    /// Dimensionality `d` of the primal space.
    #[inline]
    pub fn dim(&self) -> usize {
        self.coeffs.len() + 1
    }

    /// Evaluates `x_d = Σ_j p[j]·x_j − p[d]` at dual coordinates
    /// `x = (x_1, …, x_{d−1})`.
    ///
    /// # Panics
    /// Panics if `x.len() != d − 1`.
    pub fn value_at(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.coeffs.len(), "dual coordinate dimensionality");
        self.coeffs
            .iter()
            .zip(x.iter())
            .map(|(c, v)| c * v)
            .sum::<f64>()
            - self.last
    }

    /// The primal score `S(p)_r = Σ_j r_j·p[j] + p[d]` for a weight-ratio
    /// vector `r = (r_1, …, r_{d−1})`; equal to `−value_at(−r)`.
    ///
    /// # Panics
    /// Panics if `r.len() != d − 1`.
    pub fn score_at_ratio(&self, r: &[f64]) -> f64 {
        assert_eq!(r.len(), self.coeffs.len(), "ratio vector dimensionality");
        self.coeffs
            .iter()
            .zip(r.iter())
            .map(|(c, v)| c * v)
            .sum::<f64>()
            + self.last
    }

    /// Recovers the primal point.
    pub fn to_point(&self) -> Point {
        let mut coords = self.coeffs.clone();
        coords.push(self.last);
        Point::new(coords)
    }
}

/// The dual point of a hyperplane `x_d = a_1·x_1 + … + a_{d−1}·x_{d−1} + a_d`:
/// the point `(a_1, …, a_{d−1}, −a_d)`.
///
/// This is the inverse direction of the duality transform; it is exposed for
/// completeness and used by the tests to check that the transform is an
/// involution.
pub fn dual_point_of_hyperplane(coeffs: &[f64], constant: f64) -> Point {
    assert!(
        !coeffs.is_empty(),
        "hyperplane needs at least one coefficient"
    );
    let mut coords = coeffs.to_vec();
    coords.push(-constant);
    Point::new(coords)
}

/// The *intersection hyperplane* of two points `a` and `b` in **ratio space**:
/// the affine functional `f(r) = S(a)_r − S(b)_r` over
/// `r = (r_1, …, r_{d−1})`, whose zero set is where the two points swap order.
///
/// `f(r) = Σ_j (a[j] − b[j])·r_j + (a[d] − b[d])`.
///
/// # Panics
/// Panics if the points have different dimensionality or `d < 2`.
pub fn score_difference_hyperplane(a: &Point, b: &Point) -> Hyperplane {
    assert_eq!(a.dim(), b.dim(), "dimension mismatch");
    assert!(a.dim() >= 2, "score_difference_hyperplane requires d >= 2");
    let d = a.dim();
    let coeffs: Vec<f64> = (0..d - 1).map(|j| a.coord(j) - b.coord(j)).collect();
    let offset = a.coord(d - 1) - b.coord(d - 1);
    Hyperplane::new(coeffs, offset)
}

/// Score `S(p)_r` of a point for a full ratio vector `r` of length `d − 1`
/// (with the implicit `w[d] = 1`), the quantity the whole paper revolves
/// around.
///
/// # Panics
/// Panics if `r.len() + 1 != p.dim()`.
pub fn score(p: &Point, r: &[f64]) -> f64 {
    assert_eq!(r.len() + 1, p.dim(), "ratio vector must have d-1 entries");
    let d = p.dim();
    r.iter()
        .enumerate()
        .map(|(j, rj)| rj * p.coord(j))
        .sum::<f64>()
        + p.coord(d - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dual_hyperplane_round_trip() {
        let p = Point::new(vec![1.0, 6.0]);
        let h = DualHyperplane::from_point(&p);
        assert_eq!(h.dim(), 2);
        assert_eq!(h.to_point(), p);
        // y = x - 6 at x = -2 gives -8 = -S(p) for r = 2.
        assert!((h.value_at(&[-2.0]) - (-8.0)).abs() < 1e-12);
        assert!((h.score_at_ratio(&[2.0]) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn dual_transform_is_involution() {
        // point -> dual hyperplane -> dual point of that hyperplane -> same point.
        let p = Point::new(vec![2.0, 3.0, 5.0]);
        let h = DualHyperplane::from_point(&p);
        // h is x_3 = 2 x_1 + 3 x_2 - 5, i.e. coeffs (2,3), constant -5.
        let q = dual_point_of_hyperplane(&[2.0, 3.0], -5.0);
        assert_eq!(q, p);
        assert_eq!(h.to_point(), p);
    }

    #[test]
    fn score_matches_weighted_sum() {
        let p = Point::new(vec![4.0, 4.0, 2.0]);
        let r = [0.36, 2.75];
        let expected = 0.36 * 4.0 + 2.75 * 4.0 + 2.0;
        assert!((score(&p, &r) - expected).abs() < 1e-12);
        let h = DualHyperplane::from_point(&p);
        assert!((h.score_at_ratio(&r) - expected).abs() < 1e-12);
        // Consistency with the dual evaluation.
        assert!((-(h.value_at(&[-0.36, -2.75])) - expected).abs() < 1e-12);
    }

    #[test]
    fn score_difference_hyperplane_zero_set_is_score_equality() {
        let a = Point::new(vec![1.0, 6.0]);
        let b = Point::new(vec![4.0, 4.0]);
        let h = score_difference_hyperplane(&a, &b);
        // f(r) = (1-4) r + (6-4) = -3r + 2, zero at r = 2/3: both scores equal there.
        let r_star = 2.0 / 3.0;
        assert!(h.eval(&[r_star]).abs() < 1e-12);
        assert!((score(&a, &[r_star]) - score(&b, &[r_star])).abs() < 1e-12);
        // Sign tells who wins: at r = 0, a has higher p[2] so f > 0 (a worse).
        assert!(h.eval(&[0.0]) > 0.0);
        assert!(score(&a, &[0.0]) > score(&b, &[0.0]));
        // At r = 2, a wins (smaller score).
        assert!(h.eval(&[2.0]) < 0.0);
        assert!(score(&a, &[2.0]) < score(&b, &[2.0]));
    }

    #[test]
    fn score_difference_hyperplane_high_dim() {
        let a = Point::new(vec![1.0, 2.0, 3.0, 4.0]);
        let b = Point::new(vec![2.0, 1.0, 4.0, 2.0]);
        let h = score_difference_hyperplane(&a, &b);
        assert_eq!(h.dim(), 3);
        for r in [[0.5, 1.0, 2.0], [1.0, 1.0, 1.0], [0.2, 3.0, 0.7]] {
            let expected = score(&a, &r) - score(&b, &r);
            assert!((h.eval(&r) - expected).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "d >= 2")]
    fn dual_rejects_one_dimensional_points() {
        let _ = DualHyperplane::from_point(&Point::new(vec![1.0]));
    }
}
