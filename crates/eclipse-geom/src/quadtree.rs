//! The line quadtree / hyperplane octree Intersection Index (§IV-B of the
//! paper).
//!
//! The index stores a set of hyperplanes (in the workspace: the *score
//! difference* hyperplanes of pairs of skyline points, living in the
//! `(d−1)`-dimensional weight-ratio space) inside a recursively subdivided
//! axis-aligned cell hierarchy.  Every internal node has `2^k` children (the
//! quadrants / octants of its cell); a cell is subdivided when more than
//! `max_capacity` hyperplanes cross it and the maximum depth has not been
//! reached.  Queries report exactly the stored hyperplanes intersecting an
//! axis-aligned query box (candidates are gathered from the leaves whose cells
//! intersect the box and then filtered with an exact hyperplane-box test, so
//! the result is never approximate).
//!
//! # Arena layout
//!
//! The tree is stored as a flat arena rather than boxed nodes: one `Vec` of
//! fixed-size node records (children referenced as a contiguous index range),
//! one shared entry slab holding every leaf's hyperplane ids, and one flat
//! buffer of cell corner coordinates.  The hyperplanes themselves live in a
//! [`HyperplaneSlab`] (structure-of-arrays coefficient rows), so the query
//! loop — an iterative descent with an explicit stack, visited-bitmap
//! deduplication and branchless box sign tests — touches only dense arrays.
//! Steady-state probes through [`HyperplaneQuadtree::query_into`] perform no
//! heap allocations.
//!
//! As the paper notes, the structure has very good average-case behaviour but
//! can degenerate to linear depth when all hyperplanes concentrate in the same
//! quadrant of every cell — exactly the worst case exercised by Figs. 13–14.
//! The [`crate::cutting`] module provides the counterpart with a bounded
//! worst case.

use eclipse_persist::{enc, Cursor, PersistError, PersistResult};
use serde::{Deserialize, Serialize};

use crate::hyperplane::{Hyperplane, HyperplaneSlab};
use crate::point::BoundingBox;
use crate::traverse::{classify_cell, CellRelation, TraversalScratch};

/// Construction parameters for [`HyperplaneQuadtree`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct QuadtreeConfig {
    /// Maximum number of hyperplanes a cell may hold before it is subdivided
    /// (the paper's example uses 3).
    pub max_capacity: usize,
    /// Hard limit on the subdivision depth, guarding against unbounded
    /// recursion when many hyperplanes pass through a common region.
    pub max_depth: usize,
    /// Global budget on the number of tree nodes.  Unlike a point quadtree,
    /// a *hyperplane* quadtree duplicates entries across every child their
    /// hyperplane crosses, so in high dimensions an unbounded tree can grow
    /// to `2^{k·depth}` nodes; once the budget is exhausted the remaining
    /// cells simply stay leaves (queries remain exact, only pruning quality
    /// degrades).
    pub max_nodes: usize,
    /// Global budget on the shared entry slab (the arena's dominant memory
    /// cost: every node stores the ids of the hyperplanes crossing its
    /// cell).  Subdivision stops once the slab reaches the budget; thanks to
    /// the breadth-first construction the cap degrades pruning uniformly
    /// (the slab may overshoot by the entries of cells already queued for
    /// subdivision, a small constant factor).
    pub max_entries: usize,
}

impl Default for QuadtreeConfig {
    fn default() -> Self {
        QuadtreeConfig {
            max_capacity: 8,
            max_depth: 16,
            max_nodes: 1 << 15,
            max_entries: 1 << 22,
        }
    }
}

/// Sentinel marking a leaf node (no children).
const NO_CHILDREN: u32 = u32::MAX;

/// One arena node: children as a contiguous index range, entries as a range
/// into the shared entry slab.
///
/// Every node — internal or leaf — records the ids of the hyperplanes
/// crossing its cell.  Leaves use the range for exact candidate filtering;
/// internal nodes use it to report their whole (deduplicated) subtree in one
/// pass when their cell is fully contained in the query box.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
struct Node {
    /// Arena index of the first child; [`NO_CHILDREN`] for leaves.
    first_child: u32,
    /// Number of children, laid out contiguously from `first_child`.
    child_count: u32,
    /// Start of this node's entry range in the shared slab.
    entries_start: u32,
    /// One past the end of the entry range.
    entries_end: u32,
}

/// A quadtree (2-D) / octree (k-D) over hyperplanes, stored as a flat arena.
///
/// The tree owns its hyperplanes in [`HyperplaneSlab`] form; construction
/// from a `&[Hyperplane]` slice copies the rows once.  [`query`] keeps the
/// historical slice-taking signature for compatibility (the slice is only
/// length-checked), while the hot path is [`query_into`], which reuses
/// caller-provided scratch.
///
/// [`query`]: HyperplaneQuadtree::query
/// [`query_into`]: HyperplaneQuadtree::query_into
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HyperplaneQuadtree {
    slab: HyperplaneSlab,
    nodes: Vec<Node>,
    /// Node cells, `2k` values per node: `k` lower corner coordinates, then
    /// `k` upper.
    cells: Vec<f64>,
    /// Shared entry slab: every leaf's hyperplane ids, concatenated.
    entries: Vec<u32>,
    root_cell: BoundingBox,
    config: QuadtreeConfig,
    max_depth_reached: usize,
}

impl HyperplaneQuadtree {
    /// Builds the index over `hyperplanes`, bounded by `cell` (hyperplanes
    /// not intersecting the root cell are simply never reported).
    pub fn build(hyperplanes: &[Hyperplane], cell: BoundingBox, config: QuadtreeConfig) -> Self {
        Self::build_from_slab(HyperplaneSlab::from_hyperplanes(hyperplanes), cell, config)
    }

    /// Builds the index over an already-constructed hyperplane slab, taking
    /// ownership of it (the cheap path for callers that assemble their rows
    /// directly, like the n-dimensional eclipse index).
    pub fn build_from_slab(
        slab: HyperplaneSlab,
        cell: BoundingBox,
        config: QuadtreeConfig,
    ) -> Self {
        let all: Vec<u32> = (0..slab.len())
            .filter(|&i| slab.intersects_box(i, cell.lo(), cell.hi()))
            .map(|i| i as u32)
            .collect();
        let mut tree = HyperplaneQuadtree {
            slab,
            nodes: Vec::new(),
            cells: Vec::new(),
            entries: Vec::new(),
            root_cell: cell.clone(),
            config,
            max_depth_reached: 0,
        };
        tree.alloc_node(&cell);
        // Iterative breadth-first construction: each work item finalizes one
        // already-allocated node.  Children are allocated contiguously when
        // their parent subdivides, so a node's children form an index range.
        // Level order matters for the node budget: when `max_nodes` runs out,
        // a BFS fills every region of the root cell to the same depth, so the
        // partially built tree prunes uniformly — a depth-first order would
        // instead spend the whole budget on the first quadrant's subtree and
        // leave the remaining quadrants as giant unpruned leaves.
        let mut work: std::collections::VecDeque<(u32, usize, Vec<u32>)> =
            std::collections::VecDeque::from([(0, 0, all)]);
        while let Some((idx, depth, node_entries)) = work.pop_front() {
            tree.max_depth_reached = tree.max_depth_reached.max(depth);
            // Every node records its (deduplicated) entry list, so queries
            // can report a fully contained subtree straight from its root.
            tree.record_entries(idx, &node_entries);
            if node_entries.len() <= tree.config.max_capacity
                || depth >= tree.config.max_depth
                || tree.nodes.len() >= tree.config.max_nodes
                || tree.entries.len() >= tree.config.max_entries
            {
                continue;
            }
            let cell = tree.node_cell(idx);
            let children_cells = subdivide(&cell);
            // If the cell has become degenerate (zero extent on every axis),
            // stop.
            if children_cells.is_empty() {
                continue;
            }
            let child_entries: Vec<Vec<u32>> = children_cells
                .iter()
                .map(|child_cell| {
                    node_entries
                        .iter()
                        .copied()
                        .filter(|&i| {
                            tree.slab
                                .intersects_box(i as usize, child_cell.lo(), child_cell.hi())
                        })
                        .collect()
                })
                .collect();
            // No-progress guard: when every child still contains every entry
            // (all hyperplanes cross all quadrants) further subdivision only
            // multiplies memory without improving pruning.
            if child_entries.iter().all(|c| c.len() == node_entries.len()) {
                continue;
            }
            let first = tree.nodes.len() as u32;
            tree.nodes[idx as usize].first_child = first;
            tree.nodes[idx as usize].child_count = children_cells.len() as u32;
            for child_cell in &children_cells {
                tree.alloc_node(child_cell);
            }
            for (ci, ce) in child_entries.into_iter().enumerate() {
                work.push_back((first + ci as u32, depth + 1, ce));
            }
        }
        tree
    }

    /// Appends a leaf placeholder for `cell` to the arena.
    fn alloc_node(&mut self, cell: &BoundingBox) {
        self.nodes.push(Node {
            first_child: NO_CHILDREN,
            child_count: 0,
            entries_start: 0,
            entries_end: 0,
        });
        self.cells.extend_from_slice(cell.lo());
        self.cells.extend_from_slice(cell.hi());
    }

    /// Stores a node's entries into the shared slab and records the range.
    fn record_entries(&mut self, idx: u32, node_entries: &[u32]) {
        let start = self.entries.len() as u32;
        self.entries.extend_from_slice(node_entries);
        let node = &mut self.nodes[idx as usize];
        node.entries_start = start;
        node.entries_end = self.entries.len() as u32;
    }

    /// Reconstructs a node's cell as an owned box (build/diagnostics only).
    fn node_cell(&self, idx: u32) -> BoundingBox {
        let k = self.root_cell.dim();
        let base = idx as usize * 2 * k;
        BoundingBox::new(
            self.cells[base..base + k].to_vec(),
            self.cells[base + k..base + 2 * k].to_vec(),
        )
    }

    /// The configuration the tree was built with.
    pub fn config(&self) -> QuadtreeConfig {
        self.config
    }

    /// Number of hyperplanes the tree was built over.
    pub fn len(&self) -> usize {
        self.slab.len()
    }

    /// `true` when the tree indexes no hyperplanes.
    pub fn is_empty(&self) -> bool {
        self.slab.is_empty()
    }

    /// Total number of tree nodes (diagnostic).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of entry-slab slots (diagnostic: the arena's dominant
    /// memory cost; every node stores the ids crossing its cell).
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Deepest level created during construction (diagnostic; the worst-case
    /// experiments of Fig. 13 drive this towards `max_depth`).
    pub fn depth(&self) -> usize {
        self.max_depth_reached
    }

    /// The root cell.
    pub fn root_cell(&self) -> &BoundingBox {
        &self.root_cell
    }

    /// The hyperplane rows the tree indexes.
    pub fn slab(&self) -> &HyperplaneSlab {
        &self.slab
    }

    /// Returns the indices of all hyperplanes intersecting `query`, in
    /// ascending order and without duplicates.
    ///
    /// `hyperplanes` must be the same slice the tree was built from (the tree
    /// owns a slab copy of the rows; the slice is only length-checked).
    /// Allocates fresh scratch per call — repeated probing should use
    /// [`HyperplaneQuadtree::query_into`].
    ///
    /// # Panics
    /// Panics if `hyperplanes.len()` differs from the construction-time count.
    pub fn query(&self, hyperplanes: &[Hyperplane], query: &BoundingBox) -> Vec<usize> {
        assert_eq!(
            hyperplanes.len(),
            self.slab.len(),
            "query must use the hyperplane slice the index was built from"
        );
        let mut scratch = TraversalScratch::new();
        let mut out = Vec::new();
        self.query_into(query.lo(), query.hi(), &mut scratch, &mut out);
        out
    }

    /// The allocation-free query: appends the indices of all hyperplanes
    /// intersecting the box `[qlo, qhi]` to `out` (cleared first), in
    /// ascending order and without duplicates.  `scratch` is reused at its
    /// high-water capacity across probes.
    ///
    /// # Panics
    /// Panics if the corner slices do not match the root cell dimensionality.
    pub fn query_into(
        &self,
        qlo: &[f64],
        qhi: &[f64],
        scratch: &mut TraversalScratch,
        out: &mut Vec<usize>,
    ) {
        out.clear();
        self.mark_hits(qlo, qhi, scratch);
        scratch.drain_into(out);
    }

    /// The count-only query: the number of hyperplanes intersecting the box
    /// `[qlo, qhi]`, computed with the same traversal (contained cells report
    /// their deduplicated subtree without a single sign test) but swept out
    /// of the visited bitmap as a popcount — no id is ever materialized, so
    /// the query performs no heap allocations at steady state.
    ///
    /// # Panics
    /// Panics if the corner slices do not match the root cell dimensionality.
    pub fn count_in_box(&self, qlo: &[f64], qhi: &[f64], scratch: &mut TraversalScratch) -> usize {
        self.mark_hits(qlo, qhi, scratch);
        scratch.drain_count()
    }

    /// Shared traversal of [`HyperplaneQuadtree::query_into`] and
    /// [`HyperplaneQuadtree::count_in_box`]: marks every hyperplane
    /// intersecting the box in the scratch's visited bitmap.
    fn mark_hits(&self, qlo: &[f64], qhi: &[f64], scratch: &mut TraversalScratch) {
        assert_eq!(
            qlo.len(),
            self.root_cell.dim(),
            "query dimensionality mismatch"
        );
        assert_eq!(
            qhi.len(),
            self.root_cell.dim(),
            "query dimensionality mismatch"
        );
        scratch.begin(self.slab.len());
        scratch.stack.push(0);
        while let Some(idx) = scratch.stack.pop() {
            let idx = idx as usize;
            let node = self.nodes[idx];
            match classify_cell(&self.cells, idx, qlo, qhi) {
                CellRelation::Disjoint => {}
                CellRelation::Contained => {
                    // The cell lies inside the query box, so every hyperplane
                    // crossing the cell crosses the box: report this node's
                    // deduplicated entry list without descending or running a
                    // single sign test.
                    for &e in &self.entries[node.entries_start as usize..node.entries_end as usize]
                    {
                        scratch.mark(e as usize);
                    }
                }
                CellRelation::Overlaps if node.first_child == NO_CHILDREN => {
                    for &e in &self.entries[node.entries_start as usize..node.entries_end as usize]
                    {
                        let e = e as usize;
                        if !scratch.is_marked(e) && self.slab.intersects_box(e, qlo, qhi) {
                            scratch.mark(e);
                        }
                    }
                }
                CellRelation::Overlaps => {
                    for c in node.first_child..node.first_child + node.child_count {
                        scratch.stack.push(c);
                    }
                }
            }
        }
    }

    /// Appends the tree's snapshot encoding: construction config, root cell,
    /// reached depth, the hyperplane slab, then the three arena buffers
    /// (node records, flat cell corners, shared entry slab).  The encoding
    /// is byte-stable: construction is deterministic, so the same input data
    /// and config always produce the same bytes.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        enc::put_usize(out, self.config.max_capacity);
        enc::put_usize(out, self.config.max_depth);
        enc::put_usize(out, self.config.max_nodes);
        enc::put_usize(out, self.config.max_entries);
        self.root_cell.encode_into(out);
        enc::put_usize(out, self.max_depth_reached);
        self.slab.encode_into(out);
        enc::put_usize(out, self.nodes.len());
        for node in &self.nodes {
            enc::put_u32(out, node.first_child);
            enc::put_u32(out, node.child_count);
            enc::put_u32(out, node.entries_start);
            enc::put_u32(out, node.entries_end);
        }
        // `cells` holds exactly 2k values per node, so no count is stored.
        for &c in &self.cells {
            enc::put_f64(out, c);
        }
        enc::put_usize(out, self.entries.len());
        for &e in &self.entries {
            enc::put_u32(out, e);
        }
    }

    /// Decodes a tree previously written by
    /// [`HyperplaneQuadtree::encode_into`], consuming exactly its bytes from
    /// `cur` and re-validating every arena invariant the query loop relies
    /// on, so a crafted payload can neither panic a probe nor hang it:
    ///
    /// * element counts are checked against the remaining bytes before any
    ///   buffer is reserved;
    /// * child ranges stay inside the arena and point strictly forward
    ///   (guaranteeing traversal termination);
    /// * entry ranges stay inside the entry slab and every entry id indexes
    ///   a slab row;
    /// * the root cell and slab dimensionalities agree.
    ///
    /// # Errors
    /// A typed [`PersistError`] for every defect; arbitrary input never
    /// panics.
    pub fn decode(cur: &mut Cursor<'_>) -> PersistResult<Self> {
        let config = QuadtreeConfig {
            max_capacity: cur.usize64()?,
            max_depth: cur.usize64()?,
            max_nodes: cur.usize64()?,
            max_entries: cur.usize64()?,
        };
        let root_cell = BoundingBox::decode(cur)?;
        let max_depth_reached = cur.usize64()?;
        let slab = HyperplaneSlab::decode(cur)?;
        let k = root_cell.dim();
        if slab.dim() != k {
            return Err(PersistError::Malformed(format!(
                "slab dimensionality {} does not match the {k}-dimensional root cell",
                slab.dim()
            )));
        }
        let node_count = cur.count(16)?;
        if node_count == 0 {
            return Err(PersistError::Malformed(
                "a quadtree arena needs at least its root node".to_string(),
            ));
        }
        let mut nodes = Vec::with_capacity(node_count);
        for _ in 0..node_count {
            nodes.push(Node {
                first_child: cur.u32()?,
                child_count: cur.u32()?,
                entries_start: cur.u32()?,
                entries_end: cur.u32()?,
            });
        }
        let cells = cur.f64_vec(node_count.checked_mul(2 * k).ok_or_else(|| {
            PersistError::Malformed(format!("{node_count} cells of dimension {k} overflow"))
        })?)?;
        let entry_count = cur.count(4)?;
        let entries = cur.u32_vec(entry_count)?;
        if let Some(&bad) = entries.iter().find(|&&e| e as usize >= slab.len()) {
            return Err(PersistError::Malformed(format!(
                "entry id {bad} out of range for {} hyperplanes",
                slab.len()
            )));
        }
        for (idx, node) in nodes.iter().enumerate() {
            if node.entries_start > node.entries_end || node.entries_end as usize > entries.len() {
                return Err(PersistError::Malformed(format!(
                    "node {idx} entry range {}..{} escapes the {}-slot entry slab",
                    node.entries_start,
                    node.entries_end,
                    entries.len()
                )));
            }
            if node.first_child == NO_CHILDREN {
                if node.child_count != 0 {
                    return Err(PersistError::Malformed(format!(
                        "leaf node {idx} claims {} children",
                        node.child_count
                    )));
                }
            } else if node.child_count == 0
                || node.first_child as usize <= idx
                || u64::from(node.first_child) + u64::from(node.child_count) > node_count as u64
            {
                // Children must point strictly forward (the builder allocates
                // them after their parent), which is also what guarantees the
                // iterative traversal terminates on decoded arenas.
                return Err(PersistError::Malformed(format!(
                    "node {idx} child range {}+{} is invalid for {node_count} nodes",
                    node.first_child, node.child_count
                )));
            }
        }
        Ok(HyperplaneQuadtree {
            slab,
            nodes,
            cells,
            entries,
            root_cell,
            config,
            max_depth_reached,
        })
    }
}

/// Splits a cell into its `2^k` children by halving every axis.  Axes with
/// (numerically) zero extent are not split; if every axis is degenerate the
/// function returns an empty vector to signal that subdivision is impossible.
fn subdivide(cell: &BoundingBox) -> Vec<BoundingBox> {
    let k = cell.dim();
    let mut splittable = Vec::new();
    for axis in 0..k {
        if cell.extent(axis) > 0.0 {
            splittable.push(axis);
        }
    }
    if splittable.is_empty() {
        return Vec::new();
    }
    let mut cells = vec![cell.clone()];
    for &axis in &splittable {
        let mid = 0.5 * (cell.lo()[axis] + cell.hi()[axis]);
        let mut next = Vec::with_capacity(cells.len() * 2);
        for c in cells {
            let (a, b) = c.split_at(axis, mid);
            next.push(a);
            next.push(b);
        }
        cells = next;
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2-D line `a·x + b·y + c = 0` as a hyperplane.
    fn line(a: f64, b: f64, c: f64) -> Hyperplane {
        Hyperplane::new(vec![a, b], c)
    }

    fn unit_box() -> BoundingBox {
        BoundingBox::new(vec![0.0, 0.0], vec![1.0, 1.0])
    }

    fn brute_force(hs: &[Hyperplane], q: &BoundingBox) -> Vec<usize> {
        (0..hs.len()).filter(|&i| hs[i].intersects_box(q)).collect()
    }

    #[test]
    fn subdivide_produces_2k_children() {
        let cells = subdivide(&unit_box());
        assert_eq!(cells.len(), 4);
        let total_volume: f64 = cells.iter().map(|c| c.volume()).sum();
        assert!((total_volume - 1.0).abs() < 1e-12);
        // Degenerate cell cannot be subdivided.
        let degenerate = BoundingBox::new(vec![0.5, 0.5], vec![0.5, 0.5]);
        assert!(subdivide(&degenerate).is_empty());
        // Cell flat on one axis splits only the other.
        let flat = BoundingBox::new(vec![0.0, 0.5], vec![1.0, 0.5]);
        assert_eq!(subdivide(&flat).len(), 2);
    }

    #[test]
    fn build_and_query_small() {
        // Diagonal and two horizontal-ish lines inside the unit box.
        let hs = vec![
            line(1.0, -1.0, 0.0),  // y = x
            line(0.0, 1.0, -0.25), // y = 0.25
            line(0.0, 1.0, -0.75), // y = 0.75
            line(1.0, 1.0, -10.0), // far away, never intersects the unit box
        ];
        let tree = HyperplaneQuadtree::build(&hs, unit_box(), QuadtreeConfig::default());
        assert_eq!(tree.len(), 4);
        assert!(!tree.is_empty());
        assert_eq!(tree.root_cell(), &unit_box());
        assert_eq!(tree.slab().len(), 4);
        let q = BoundingBox::new(vec![0.0, 0.0], vec![0.5, 0.5]);
        let got = tree.query(&hs, &q);
        assert_eq!(got, brute_force(&hs, &q));
        assert!(got.contains(&0));
        assert!(got.contains(&1));
        assert!(!got.contains(&3));
    }

    #[test]
    fn query_whole_root_returns_everything_crossing_it() {
        let hs: Vec<Hyperplane> = (0..50)
            .map(|i| line(1.0, -1.0, -(i as f64) / 50.0))
            .collect();
        let tree = HyperplaneQuadtree::build(
            &hs,
            unit_box(),
            QuadtreeConfig {
                max_capacity: 4,
                max_depth: 12,
                ..QuadtreeConfig::default()
            },
        );
        let got = tree.query(&hs, &unit_box());
        assert_eq!(got, brute_force(&hs, &unit_box()));
        assert!(tree.node_count() > 1, "tree should have subdivided");
        assert!(tree.depth() >= 1);
    }

    #[test]
    fn query_into_reuses_scratch_across_probes() {
        let hs: Vec<Hyperplane> = (0..60)
            .map(|i| line(1.0, -1.0, -(i as f64) / 60.0))
            .collect();
        let tree = HyperplaneQuadtree::build(
            &hs,
            unit_box(),
            QuadtreeConfig {
                max_capacity: 4,
                ..QuadtreeConfig::default()
            },
        );
        let mut scratch = TraversalScratch::new();
        let mut out = Vec::new();
        for (x0, y0, side) in [(0.0, 0.0, 0.4), (0.5, 0.5, 0.3), (0.9, 0.1, 0.05)] {
            let q = BoundingBox::new(vec![x0, y0], vec![x0 + side, y0 + side]);
            tree.query_into(q.lo(), q.hi(), &mut scratch, &mut out);
            assert_eq!(out, brute_force(&hs, &q), "box {q:?}");
        }
    }

    #[test]
    fn query_agrees_with_brute_force_randomized() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let hs: Vec<Hyperplane> = (0..200)
            .map(|_| {
                line(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                )
            })
            .collect();
        let root = BoundingBox::new(vec![-1.0, -1.0], vec![1.0, 1.0]);
        let tree = HyperplaneQuadtree::build(
            &hs,
            root,
            QuadtreeConfig {
                max_capacity: 6,
                max_depth: 10,
                ..QuadtreeConfig::default()
            },
        );
        for _ in 0..25 {
            let x0 = rng.gen_range(-1.0..0.9);
            let y0 = rng.gen_range(-1.0..0.9);
            let q = BoundingBox::new(
                vec![x0, y0],
                vec![x0 + rng.gen_range(0.01..0.1), y0 + rng.gen_range(0.01..0.1)],
            );
            assert_eq!(tree.query(&hs, &q), brute_force(&hs, &q));
        }
    }

    #[test]
    fn three_dimensional_octree() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let hs: Vec<Hyperplane> = (0..100)
            .map(|_| {
                Hyperplane::new(
                    vec![
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                    ],
                    rng.gen_range(-0.5..0.5),
                )
            })
            .collect();
        let root = BoundingBox::new(vec![-1.0, -1.0, -1.0], vec![1.0, 1.0, 1.0]);
        let tree = HyperplaneQuadtree::build(&hs, root, QuadtreeConfig::default());
        for _ in 0..10 {
            let lo: Vec<f64> = (0..3).map(|_| rng.gen_range(-1.0..0.8)).collect();
            let hi: Vec<f64> = lo.iter().map(|l| l + rng.gen_range(0.05..0.2)).collect();
            let q = BoundingBox::new(lo, hi);
            assert_eq!(tree.query(&hs, &q), brute_force(&hs, &q));
        }
    }

    #[test]
    fn empty_tree_queries_cleanly() {
        let hs: Vec<Hyperplane> = Vec::new();
        let tree = HyperplaneQuadtree::build(&hs, unit_box(), QuadtreeConfig::default());
        assert!(tree.is_empty());
        assert_eq!(tree.query(&hs, &unit_box()), Vec::<usize>::new());
        assert_eq!(tree.node_count(), 1);
        let mut scratch = TraversalScratch::new();
        assert_eq!(tree.count_in_box(&[0.0, 0.0], &[1.0, 1.0], &mut scratch), 0);
    }

    #[test]
    fn count_in_box_matches_query_cardinality() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(43);
        let hs: Vec<Hyperplane> = (0..200)
            .map(|_| {
                line(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                )
            })
            .collect();
        let root = BoundingBox::new(vec![-1.0, -1.0], vec![1.0, 1.0]);
        let tree = HyperplaneQuadtree::build(
            &hs,
            root.clone(),
            QuadtreeConfig {
                max_capacity: 6,
                ..QuadtreeConfig::default()
            },
        );
        let mut scratch = TraversalScratch::new();
        // One scratch alternates freely between id and count drains; the box
        // covering the whole root cell takes the contained fast path at the
        // root node itself.
        for q in std::iter::once(root).chain((0..25).map(|_| {
            let x0 = rng.gen_range(-1.0..0.8);
            let y0 = rng.gen_range(-1.0..0.8);
            BoundingBox::new(
                vec![x0, y0],
                vec![x0 + rng.gen_range(0.01..0.2), y0 + rng.gen_range(0.01..0.2)],
            )
        })) {
            let ids = tree.query(&hs, &q);
            assert_eq!(
                tree.count_in_box(q.lo(), q.hi(), &mut scratch),
                ids.len(),
                "box {q:?}"
            );
            // The count drain left the bitmap clean for the next id query.
            let mut out = Vec::new();
            tree.query_into(q.lo(), q.hi(), &mut scratch, &mut out);
            assert_eq!(out, ids, "box {q:?}");
        }
    }

    #[test]
    fn clustered_lines_drive_depth_up() {
        // All lines pass very close to the same corner: the quadtree keeps
        // subdividing towards that corner (the paper's worst case).
        let hs: Vec<Hyperplane> = (0..64).map(|i| line(1.0, -1.0, -1e-4 * i as f64)).collect();
        let cfg = QuadtreeConfig {
            max_capacity: 2,
            max_depth: 20,
            ..QuadtreeConfig::default()
        };
        let tree = HyperplaneQuadtree::build(&hs, unit_box(), cfg);
        assert!(
            tree.depth() >= 8,
            "clustered input should create a deep tree, got {}",
            tree.depth()
        );
        // Queries remain exact even in the degenerate case.
        let q = BoundingBox::new(vec![0.4, 0.4], vec![0.6, 0.6]);
        assert_eq!(tree.query(&hs, &q), brute_force(&hs, &q));
    }

    #[test]
    fn node_budget_caps_the_arena() {
        let hs: Vec<Hyperplane> = (0..128)
            .map(|i| line(1.0, -1.0, -(i as f64) / 128.0))
            .collect();
        let cfg = QuadtreeConfig {
            max_capacity: 1,
            max_depth: 30,
            max_nodes: 64,
            ..QuadtreeConfig::default()
        };
        let tree = HyperplaneQuadtree::build(&hs, unit_box(), cfg);
        // The budget may be exceeded by at most one sibling group.
        assert!(tree.node_count() <= 64 + 4, "got {}", tree.node_count());
        // Queries are exact regardless of where construction stopped.
        let q = BoundingBox::new(vec![0.1, 0.1], vec![0.9, 0.9]);
        assert_eq!(tree.query(&hs, &q), brute_force(&hs, &q));
    }

    #[test]
    fn snapshot_round_trips_byte_exactly() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(2026);
        let hs: Vec<Hyperplane> = (0..150)
            .map(|_| {
                line(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                )
            })
            .collect();
        let root = BoundingBox::new(vec![-1.0, -1.0], vec![1.0, 1.0]);
        let tree = HyperplaneQuadtree::build(
            &hs,
            root,
            QuadtreeConfig {
                max_capacity: 4,
                ..QuadtreeConfig::default()
            },
        );
        let mut bytes = Vec::new();
        tree.encode_into(&mut bytes);
        let mut cur = Cursor::new(&bytes);
        let back = HyperplaneQuadtree::decode(&mut cur).unwrap();
        cur.finish().unwrap();
        assert_eq!(back.config(), tree.config());
        assert_eq!(back.root_cell(), tree.root_cell());
        assert_eq!(back.node_count(), tree.node_count());
        assert_eq!(back.entry_count(), tree.entry_count());
        assert_eq!(back.depth(), tree.depth());
        // The decoded tree answers every probe identically.
        for _ in 0..20 {
            let x0 = rng.gen_range(-1.0..0.8);
            let y0 = rng.gen_range(-1.0..0.8);
            let q = BoundingBox::new(
                vec![x0, y0],
                vec![x0 + rng.gen_range(0.01..0.3), y0 + rng.gen_range(0.01..0.3)],
            );
            assert_eq!(back.query(&hs, &q), tree.query(&hs, &q), "box {q:?}");
        }
        // Re-encoding reproduces the bytes exactly (the golden-file property).
        let mut again = Vec::new();
        back.encode_into(&mut again);
        assert_eq!(again, bytes);
    }

    #[test]
    fn snapshot_decode_is_total_on_hostile_input() {
        let hs = vec![line(1.0, -1.0, 0.0), line(0.0, 1.0, -0.25)];
        let tree = HyperplaneQuadtree::build(&hs, unit_box(), QuadtreeConfig::default());
        let mut bytes = Vec::new();
        tree.encode_into(&mut bytes);
        // Every truncation errors cleanly.
        for cut in 0..bytes.len() {
            assert!(
                HyperplaneQuadtree::decode(&mut Cursor::new(&bytes[..cut])).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
        // A forward-pointing child range is required: rewire the root to
        // reference itself and the decoder must refuse (this is what keeps
        // traversal of decoded arenas terminating).
        let mut evil = Vec::new();
        let evil_tree = {
            let mut t = tree.clone();
            t.nodes[0].first_child = 0;
            t.nodes[0].child_count = 1;
            t
        };
        evil_tree.encode_into(&mut evil);
        assert!(matches!(
            HyperplaneQuadtree::decode(&mut Cursor::new(&evil)),
            Err(PersistError::Malformed(m)) if m.contains("child range")
        ));
        // An entry id beyond the slab is rejected.
        let mut evil = Vec::new();
        let evil_tree = {
            let mut t = tree.clone();
            if t.entries.is_empty() {
                t.entries.push(99);
                t.nodes[0].entries_start = 0;
                t.nodes[0].entries_end = 1;
            } else {
                t.entries[0] = 99;
            }
            t
        };
        evil_tree.encode_into(&mut evil);
        assert!(matches!(
            HyperplaneQuadtree::decode(&mut Cursor::new(&evil)),
            Err(PersistError::Malformed(m)) if m.contains("out of range")
        ));
    }

    #[test]
    #[should_panic(expected = "hyperplane slice")]
    fn query_with_wrong_slice_panics() {
        let hs = vec![line(1.0, -1.0, 0.0)];
        let tree = HyperplaneQuadtree::build(&hs, unit_box(), QuadtreeConfig::default());
        let wrong: Vec<Hyperplane> = Vec::new();
        let _ = tree.query(&wrong, &unit_box());
    }
}
