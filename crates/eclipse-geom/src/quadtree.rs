//! The line quadtree / hyperplane octree Intersection Index (§IV-B of the
//! paper).
//!
//! The index stores a set of hyperplanes (in the workspace: the *score
//! difference* hyperplanes of pairs of skyline points, living in the
//! `(d−1)`-dimensional weight-ratio space) inside a recursively subdivided
//! axis-aligned cell hierarchy.  Every internal node has `2^k` children (the
//! quadrants / octants of its cell); a cell is subdivided when more than
//! `max_capacity` hyperplanes cross it and the maximum depth has not been
//! reached.  Queries report exactly the stored hyperplanes intersecting an
//! axis-aligned query box (candidates are gathered from the leaves whose cells
//! intersect the box and then filtered with an exact hyperplane-box test, so
//! the result is never approximate).
//!
//! # Arena layout
//!
//! The tree is stored as a flat arena rather than boxed nodes: one `Vec` of
//! fixed-size node records (children referenced as a contiguous index range),
//! one shared entry slab holding every leaf's hyperplane ids, and one flat
//! buffer of cell corner coordinates.  The hyperplanes themselves live in a
//! [`HyperplaneSlab`] (structure-of-arrays coefficient rows), so the query
//! loop — an iterative descent with an explicit stack, visited-bitmap
//! deduplication and branchless box sign tests — touches only dense arrays.
//! Steady-state probes through [`HyperplaneQuadtree::query_into`] perform no
//! heap allocations.
//!
//! As the paper notes, the structure has very good average-case behaviour but
//! can degenerate to linear depth when all hyperplanes concentrate in the same
//! quadrant of every cell — exactly the worst case exercised by Figs. 13–14.
//! The [`crate::cutting`] module provides the counterpart with a bounded
//! worst case.

use eclipse_exec::ThreadPool;
use eclipse_persist::{enc, Cursor, PersistError, PersistResult};
use serde::{Deserialize, Serialize};

use crate::approx::EPS;
use crate::hyperplane::{Hyperplane, HyperplaneSlab};
use crate::point::BoundingBox;
use crate::traverse::{classify_cell, CellRelation, TraversalScratch};

/// How an overfull cell is partitioned into children.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SplitRule {
    /// The classic quadtree rule: halve every non-degenerate axis at its
    /// midpoint, producing `2^k` congruent children.  This is the only rule
    /// format-v1 snapshots can carry.
    Midpoint,
    /// Data-adaptive rule: per node, the in-cell zero-crossings of the
    /// entries are measured along every axis.  When one axis carries nearly
    /// all of the crossing signal the cell is cut once, on that axis, at the
    /// median crossing (a cutting-tree-style split that tracks clustered,
    /// near-axis-perpendicular bundles instead of blindly halving space);
    /// otherwise every splittable axis is split at its median crossing
    /// (falling back to the midpoint on axes without crossings), so
    /// quadrant-style splits still land where the hyperplanes actually are.
    /// Deterministic — no randomness is consumed.
    Hybrid,
}

impl SplitRule {
    /// Stable one-byte snapshot tag.
    pub fn tag(self) -> u8 {
        match self {
            SplitRule::Midpoint => 0,
            SplitRule::Hybrid => 1,
        }
    }

    /// Inverse of [`SplitRule::tag`]; rejects unknown tags.
    pub fn from_tag(tag: u8) -> PersistResult<Self> {
        match tag {
            0 => Ok(SplitRule::Midpoint),
            1 => Ok(SplitRule::Hybrid),
            other => Err(PersistError::Malformed(format!(
                "unknown quadtree split-rule tag {other}"
            ))),
        }
    }
}

/// Construction parameters for [`HyperplaneQuadtree`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct QuadtreeConfig {
    /// Maximum number of hyperplanes a cell may hold before it is subdivided
    /// (the paper's example uses 3).
    pub max_capacity: usize,
    /// Hard limit on the subdivision depth, guarding against unbounded
    /// recursion when many hyperplanes pass through a common region.
    pub max_depth: usize,
    /// Global budget on the number of tree nodes.  Unlike a point quadtree,
    /// a *hyperplane* quadtree duplicates entries across every child their
    /// hyperplane crosses, so in high dimensions an unbounded tree can grow
    /// to `2^{k·depth}` nodes; once the budget is exhausted the remaining
    /// cells simply stay leaves (queries remain exact, only pruning quality
    /// degrades).
    pub max_nodes: usize,
    /// Global budget on the shared entry slab (the arena's dominant memory
    /// cost: every node stores the ids of the hyperplanes crossing its
    /// cell).  Subdivision stops once the slab reaches the budget; thanks to
    /// the breadth-first construction the cap degrades pruning uniformly
    /// (the slab may overshoot by the entries of cells already queued for
    /// subdivision, a small constant factor).
    pub max_entries: usize,
    /// How overfull cells are partitioned; see [`SplitRule`].
    pub split: SplitRule,
}

impl Default for QuadtreeConfig {
    fn default() -> Self {
        QuadtreeConfig {
            max_capacity: 8,
            max_depth: 16,
            max_nodes: 1 << 15,
            max_entries: 1 << 22,
            split: SplitRule::Hybrid,
        }
    }
}

/// Sentinel marking a leaf node (no children).
const NO_CHILDREN: u32 = u32::MAX;

/// One arena node: children as a contiguous index range, entries as a range
/// into the shared entry slab.
///
/// Every node — internal or leaf — records the ids of the hyperplanes
/// crossing its cell.  Leaves use the range for exact candidate filtering;
/// internal nodes use it to report their whole (deduplicated) subtree in one
/// pass when their cell is fully contained in the query box.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
struct Node {
    /// Arena index of the first child; [`NO_CHILDREN`] for leaves.
    first_child: u32,
    /// Number of children, laid out contiguously from `first_child`.
    child_count: u32,
    /// Start of this node's entry range in the shared slab.
    entries_start: u32,
    /// One past the end of the entry range.
    entries_end: u32,
}

/// A quadtree (2-D) / octree (k-D) over hyperplanes, stored as a flat arena.
///
/// The tree owns its hyperplanes in [`HyperplaneSlab`] form; construction
/// from a `&[Hyperplane]` slice copies the rows once.  [`query`] keeps the
/// historical slice-taking signature for compatibility (the slice is only
/// length-checked), while the hot path is [`query_into`], which reuses
/// caller-provided scratch.
///
/// [`query`]: HyperplaneQuadtree::query
/// [`query_into`]: HyperplaneQuadtree::query_into
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HyperplaneQuadtree {
    slab: HyperplaneSlab,
    nodes: Vec<Node>,
    /// Node cells, `2k` values per node: `k` lower corner coordinates, then
    /// `k` upper.
    cells: Vec<f64>,
    /// Shared entry slab: every leaf's hyperplane ids, concatenated.
    entries: Vec<u32>,
    root_cell: BoundingBox,
    config: QuadtreeConfig,
    max_depth_reached: usize,
}

impl HyperplaneQuadtree {
    /// Builds the index over `hyperplanes`, bounded by `cell` (hyperplanes
    /// not intersecting the root cell are simply never reported).
    pub fn build(hyperplanes: &[Hyperplane], cell: BoundingBox, config: QuadtreeConfig) -> Self {
        Self::build_from_slab(HyperplaneSlab::from_hyperplanes(hyperplanes), cell, config)
    }

    /// Builds the index over an already-constructed hyperplane slab, taking
    /// ownership of it (the cheap path for callers that assemble their rows
    /// directly, like the n-dimensional eclipse index).  Serial; see
    /// [`HyperplaneQuadtree::build_from_slab_with`] for the pool-aware entry
    /// point (both produce byte-identical arenas).
    pub fn build_from_slab(
        slab: HyperplaneSlab,
        cell: BoundingBox,
        config: QuadtreeConfig,
    ) -> Self {
        Self::build_from_slab_with(slab, cell, config, None)
    }

    /// Builds the index, optionally spreading per-node split planning over
    /// `pool`.
    ///
    /// Construction is level-synchronous breadth-first: each level's node
    /// frontier is *planned* first (per-node child cells and entry
    /// partitions — the expensive sign tests — computed independently, in
    /// parallel when a pool is supplied), then *stitched* serially in
    /// frontier order (entry recording, budget checks, contiguous child
    /// allocation).  Planning is pure per node and the stitch replays the
    /// exact serial order, so the arena — and therefore the snapshot
    /// encoding — is byte-identical for any thread count.
    ///
    /// Level order also matters for the node budget: when `max_nodes` runs
    /// out, a BFS fills every region of the root cell to the same depth, so
    /// the partially built tree prunes uniformly — a depth-first order would
    /// instead spend the whole budget on the first quadrant's subtree and
    /// leave the remaining quadrants as giant unpruned leaves.
    ///
    /// # Per-build midpoint fallback for [`SplitRule::Hybrid`]
    ///
    /// When most entries pass near one shared point (the clustered worst
    /// case), the census medians land on that point and every child of
    /// every cut inherits most of its parent's entries.  Each such split
    /// looks locally fine — it makes progress — but the duplication
    /// compounds level over level and exhausts `max_entries` well before
    /// the midpoint rule would, leaving a shallower, slower arena.  No
    /// per-node heuristic can see this (the damage is global), so the
    /// builder checks the *finished* tree instead: if a Hybrid build ran
    /// out of entry budget, the midpoint tree is built too and the arena
    /// with more nodes — the one whose budget went into pruning rather
    /// than duplication — wins (ties keep the census tree).  The fallback
    /// arena still advertises `SplitRule::Hybrid`, since this check is part
    /// of the rule: rebuilding from the carried config reproduces it
    /// byte-for-byte.  Builds that stay within budget never pay for it.
    pub fn build_from_slab_with(
        slab: HyperplaneSlab,
        cell: BoundingBox,
        config: QuadtreeConfig,
        pool: Option<&ThreadPool>,
    ) -> Self {
        let tree = Self::build_arena(slab, cell.clone(), config, pool);
        if tree.config.split == SplitRule::Hybrid && tree.entries.len() >= tree.config.max_entries {
            let mut midpoint_config = tree.config;
            midpoint_config.split = SplitRule::Midpoint;
            let mut midpoint = Self::build_arena(tree.slab.clone(), cell, midpoint_config, pool);
            if midpoint.nodes.len() > tree.nodes.len() {
                midpoint.config.split = SplitRule::Hybrid;
                return midpoint;
            }
        }
        tree
    }

    /// One budget-bounded level-synchronous arena build with the configured
    /// split rule, no fallback; see [`HyperplaneQuadtree::build_from_slab_with`].
    fn build_arena(
        slab: HyperplaneSlab,
        cell: BoundingBox,
        config: QuadtreeConfig,
        pool: Option<&ThreadPool>,
    ) -> Self {
        let mut all = Vec::new();
        slab.filter_all_intersecting_into(cell.lo(), cell.hi(), &mut all);
        let mut tree = HyperplaneQuadtree {
            slab,
            nodes: Vec::new(),
            cells: Vec::new(),
            entries: Vec::new(),
            root_cell: cell.clone(),
            config,
            max_depth_reached: 0,
        };
        tree.alloc_node(&cell);
        // Upper bound on the children one split allocates (a full quadrant
        // split on every axis); sizes the planning chunks below.
        let max_children = 1usize << tree.root_cell.dim().min(16);
        let mut frontier: Vec<(u32, Vec<u32>)> = vec![(0, all)];
        let mut depth = 0usize;
        while !frontier.is_empty() {
            tree.max_depth_reached = tree.max_depth_reached.max(depth);
            let depth_open = depth < tree.config.max_depth;
            let mut next = Vec::new();
            let mut i = 0usize;
            while i < frontier.len() {
                if !depth_open
                    || tree.nodes.len() >= tree.config.max_nodes
                    || tree.entries.len() >= tree.config.max_entries
                {
                    // No node from here on can split (depth and budget
                    // exhaustion only ever grow); record the remaining entry
                    // lists and finish the level without planning them.
                    for (idx, node_entries) in &frontier[i..] {
                        tree.record_entries(*idx, node_entries);
                    }
                    break;
                }
                // Phase A — plan: child cells + entry partitions, one chunk
                // of frontier nodes at a time.  The chunk is sized so that
                // stitching it cannot overrun a budget by more than one
                // node's children: on early levels with plenty of room the
                // chunk is the whole level (maximal parallelism), while on
                // the level where a budget fills the chunks shrink and at
                // most one chunk of planning is ever thrown away.
                let node_room = (tree.config.max_nodes - tree.nodes.len()) / max_children;
                let entry_room = tree.config.max_entries - tree.entries.len();
                let mut end = i;
                let mut chunk_entries = 0usize;
                while end < frontier.len()
                    && end - i < node_room.max(1)
                    && chunk_entries < entry_room
                {
                    chunk_entries += frontier[end].1.len();
                    end += 1;
                }
                let chunk = &frontier[i..end];
                let plans: Vec<Option<SplitPlan>> = {
                    let tree = &tree;
                    let plan_one = |(idx, node_entries): &(u32, Vec<u32>)| -> Option<SplitPlan> {
                        if node_entries.len() <= tree.config.max_capacity {
                            return None;
                        }
                        let cell = tree.node_cell(*idx);
                        plan_split(&tree.slab, &cell, node_entries, &tree.config)
                    };
                    match pool {
                        Some(pool)
                            if pool.threads() > 1
                                && chunk_entries >= PARALLEL_BUILD_MIN_ENTRIES =>
                        {
                            pool.par_map(chunk, plan_one)
                        }
                        _ => chunk.iter().map(plan_one).collect(),
                    }
                };
                // Phase B — stitch, serially and in frontier order
                // (identical to the historical one-node-at-a-time BFS pop
                // order).  The checks below observe the live arena exactly
                // as the serial builder did, so the result is unchanged.
                for (j, plan) in plans.into_iter().enumerate() {
                    let (idx, node_entries) = &frontier[i + j];
                    // Every node records its (deduplicated) entry list, so
                    // queries can report a fully contained subtree straight
                    // from its root.
                    tree.record_entries(*idx, node_entries);
                    if node_entries.len() <= tree.config.max_capacity
                        || depth >= tree.config.max_depth
                        || tree.nodes.len() >= tree.config.max_nodes
                        || tree.entries.len() >= tree.config.max_entries
                    {
                        continue;
                    }
                    // `plan` is `None` when the cell is degenerate on every
                    // axis or no child partition made progress (all
                    // hyperplanes cross all children) — further subdivision
                    // would only multiply memory without improving pruning.
                    let Some(plan) = plan else { continue };
                    let first = tree.nodes.len() as u32;
                    tree.nodes[*idx as usize].first_child = first;
                    tree.nodes[*idx as usize].child_count = plan.cells.len() as u32;
                    for child_cell in &plan.cells {
                        tree.alloc_node(child_cell);
                    }
                    for (ci, ce) in plan.child_entries.into_iter().enumerate() {
                        next.push((first + ci as u32, ce));
                    }
                }
                i = end;
            }
            frontier = next;
            depth += 1;
        }
        tree
    }

    /// Appends a leaf placeholder for `cell` to the arena.
    fn alloc_node(&mut self, cell: &BoundingBox) {
        self.nodes.push(Node {
            first_child: NO_CHILDREN,
            child_count: 0,
            entries_start: 0,
            entries_end: 0,
        });
        self.cells.extend_from_slice(cell.lo());
        self.cells.extend_from_slice(cell.hi());
    }

    /// Stores a node's entries into the shared slab and records the range.
    fn record_entries(&mut self, idx: u32, node_entries: &[u32]) {
        let start = self.entries.len() as u32;
        self.entries.extend_from_slice(node_entries);
        let node = &mut self.nodes[idx as usize];
        node.entries_start = start;
        node.entries_end = self.entries.len() as u32;
    }

    /// Reconstructs a node's cell as an owned box (build/diagnostics only).
    fn node_cell(&self, idx: u32) -> BoundingBox {
        let k = self.root_cell.dim();
        let base = idx as usize * 2 * k;
        BoundingBox::new(
            self.cells[base..base + k].to_vec(),
            self.cells[base + k..base + 2 * k].to_vec(),
        )
    }

    /// The configuration the tree was built with.
    pub fn config(&self) -> QuadtreeConfig {
        self.config
    }

    /// Number of hyperplanes the tree was built over.
    pub fn len(&self) -> usize {
        self.slab.len()
    }

    /// `true` when the tree indexes no hyperplanes.
    pub fn is_empty(&self) -> bool {
        self.slab.is_empty()
    }

    /// Total number of tree nodes (diagnostic).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of entry-slab slots (diagnostic: the arena's dominant
    /// memory cost; every node stores the ids crossing its cell).
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Deepest level created during construction (diagnostic; the worst-case
    /// experiments of Fig. 13 drive this towards `max_depth`).
    pub fn depth(&self) -> usize {
        self.max_depth_reached
    }

    /// Heap bytes owned by the arena: the hyperplane slab plus the node,
    /// cell-corner and entry buffers (counted at capacity) and the root
    /// cell's corners.  Exact up to allocator headers; used by the serving
    /// layer's memory accounting.
    pub fn heap_bytes(&self) -> usize {
        self.slab.heap_bytes()
            + self.nodes.capacity() * std::mem::size_of::<Node>()
            + self.cells.capacity() * std::mem::size_of::<f64>()
            + self.entries.capacity() * std::mem::size_of::<u32>()
            + self.root_cell.heap_bytes()
    }

    /// The root cell.
    pub fn root_cell(&self) -> &BoundingBox {
        &self.root_cell
    }

    /// The hyperplane rows the tree indexes.
    pub fn slab(&self) -> &HyperplaneSlab {
        &self.slab
    }

    /// Returns the indices of all hyperplanes intersecting `query`, in
    /// ascending order and without duplicates.
    ///
    /// `hyperplanes` must be the same slice the tree was built from (the tree
    /// owns a slab copy of the rows; the slice is only length-checked).
    /// Allocates fresh scratch per call — repeated probing should use
    /// [`HyperplaneQuadtree::query_into`].
    ///
    /// # Panics
    /// Panics if `hyperplanes.len()` differs from the construction-time count.
    pub fn query(&self, hyperplanes: &[Hyperplane], query: &BoundingBox) -> Vec<usize> {
        assert_eq!(
            hyperplanes.len(),
            self.slab.len(),
            "query must use the hyperplane slice the index was built from"
        );
        let mut scratch = TraversalScratch::new();
        let mut out = Vec::new();
        self.query_into(query.lo(), query.hi(), &mut scratch, &mut out);
        out
    }

    /// The allocation-free query: appends the indices of all hyperplanes
    /// intersecting the box `[qlo, qhi]` to `out` (cleared first), in
    /// ascending order and without duplicates.  `scratch` is reused at its
    /// high-water capacity across probes.
    ///
    /// # Panics
    /// Panics if the corner slices do not match the root cell dimensionality.
    pub fn query_into(
        &self,
        qlo: &[f64],
        qhi: &[f64],
        scratch: &mut TraversalScratch,
        out: &mut Vec<usize>,
    ) {
        out.clear();
        self.mark_hits(qlo, qhi, scratch);
        scratch.drain_into(out);
    }

    /// The count-only query: the number of hyperplanes intersecting the box
    /// `[qlo, qhi]`, computed with the same traversal (contained cells report
    /// their deduplicated subtree without a single sign test) but swept out
    /// of the visited bitmap as a popcount — no id is ever materialized, so
    /// the query performs no heap allocations at steady state.
    ///
    /// # Panics
    /// Panics if the corner slices do not match the root cell dimensionality.
    pub fn count_in_box(&self, qlo: &[f64], qhi: &[f64], scratch: &mut TraversalScratch) -> usize {
        self.mark_hits(qlo, qhi, scratch);
        scratch.drain_count()
    }

    /// Shared traversal of [`HyperplaneQuadtree::query_into`] and
    /// [`HyperplaneQuadtree::count_in_box`]: marks every hyperplane
    /// intersecting the box in the scratch's visited bitmap.
    fn mark_hits(&self, qlo: &[f64], qhi: &[f64], scratch: &mut TraversalScratch) {
        assert_eq!(
            qlo.len(),
            self.root_cell.dim(),
            "query dimensionality mismatch"
        );
        assert_eq!(
            qhi.len(),
            self.root_cell.dim(),
            "query dimensionality mismatch"
        );
        scratch.begin(self.slab.len());
        scratch.stack.push(0);
        while let Some(idx) = scratch.stack.pop() {
            let idx = idx as usize;
            let node = self.nodes[idx];
            match classify_cell(&self.cells, idx, qlo, qhi) {
                CellRelation::Disjoint => {}
                CellRelation::Contained => {
                    // The cell lies inside the query box, so every hyperplane
                    // crossing the cell crosses the box: report this node's
                    // deduplicated entry list without descending or running a
                    // single sign test.
                    for &e in &self.entries[node.entries_start as usize..node.entries_end as usize]
                    {
                        scratch.mark(e as usize);
                    }
                }
                CellRelation::Overlaps if node.first_child == NO_CHILDREN => {
                    // Gather the not-yet-marked entries and sign-test them
                    // four at a time through the batched kernel; the buffers
                    // are taken out of the scratch for the duration (no
                    // allocation at steady state, same bit-exact decisions).
                    let mut pending = std::mem::take(&mut scratch.pending);
                    let mut filtered = std::mem::take(&mut scratch.filtered);
                    pending.clear();
                    pending.extend(
                        self.entries[node.entries_start as usize..node.entries_end as usize]
                            .iter()
                            .copied()
                            .filter(|&e| !scratch.is_marked(e as usize)),
                    );
                    filtered.clear();
                    self.slab
                        .filter_intersecting_into(&pending, qlo, qhi, &mut filtered);
                    for &e in &filtered {
                        scratch.mark(e as usize);
                    }
                    scratch.pending = pending;
                    scratch.filtered = filtered;
                }
                CellRelation::Overlaps => {
                    for c in node.first_child..node.first_child + node.child_count {
                        scratch.stack.push(c);
                    }
                }
            }
        }
    }

    /// Appends the tree's snapshot encoding: construction config, root cell,
    /// reached depth, the hyperplane slab, then the three arena buffers
    /// (node records, flat cell corners, shared entry slab).  The encoding
    /// is byte-stable: construction is deterministic (for any thread count),
    /// so the same input data and config always produce the same bytes.
    ///
    /// Always writes the current container format; the split-rule tag after
    /// the numeric config fields is the format-v2 addition.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        enc::put_usize(out, self.config.max_capacity);
        enc::put_usize(out, self.config.max_depth);
        enc::put_usize(out, self.config.max_nodes);
        enc::put_usize(out, self.config.max_entries);
        enc::put_u8(out, self.config.split.tag());
        self.root_cell.encode_into(out);
        enc::put_usize(out, self.max_depth_reached);
        self.slab.encode_into(out);
        enc::put_usize(out, self.nodes.len());
        for node in &self.nodes {
            enc::put_u32(out, node.first_child);
            enc::put_u32(out, node.child_count);
            enc::put_u32(out, node.entries_start);
            enc::put_u32(out, node.entries_end);
        }
        // `cells` holds exactly 2k values per node, so no count is stored.
        for &c in &self.cells {
            enc::put_f64(out, c);
        }
        enc::put_usize(out, self.entries.len());
        for &e in &self.entries {
            enc::put_u32(out, e);
        }
    }

    /// Decodes a tree previously written by
    /// [`HyperplaneQuadtree::encode_into`], consuming exactly its bytes from
    /// `cur` and re-validating every arena invariant the query loop relies
    /// on, so a crafted payload can neither panic a probe nor hang it:
    ///
    /// * element counts are checked against the remaining bytes before any
    ///   buffer is reserved;
    /// * child ranges stay inside the arena and point strictly forward
    ///   (guaranteeing traversal termination);
    /// * entry ranges stay inside the entry slab and every entry id indexes
    ///   a slab row;
    /// * the root cell and slab dimensionalities agree.
    ///
    /// # Errors
    /// A typed [`PersistError`] for every defect; arbitrary input never
    /// panics.
    pub fn decode(cur: &mut Cursor<'_>) -> PersistResult<Self> {
        Self::decode_versioned(cur, eclipse_persist::FORMAT_VERSION)
    }

    /// Version-aware decode: format-v1 payloads predate [`SplitRule`] (no
    /// tag byte; every v1 tree was built with the midpoint rule), v2 carries
    /// the rule tag.  Callers reading a snapshot container pass
    /// `SnapshotReader::version`.
    pub fn decode_versioned(cur: &mut Cursor<'_>, version: u32) -> PersistResult<Self> {
        let config = QuadtreeConfig {
            max_capacity: cur.usize64()?,
            max_depth: cur.usize64()?,
            max_nodes: cur.usize64()?,
            max_entries: cur.usize64()?,
            split: if version >= 2 {
                SplitRule::from_tag(cur.u8()?)?
            } else {
                SplitRule::Midpoint
            },
        };
        let root_cell = BoundingBox::decode(cur)?;
        let max_depth_reached = cur.usize64()?;
        let slab = HyperplaneSlab::decode(cur)?;
        let k = root_cell.dim();
        if slab.dim() != k {
            return Err(PersistError::Malformed(format!(
                "slab dimensionality {} does not match the {k}-dimensional root cell",
                slab.dim()
            )));
        }
        let node_count = cur.count(16)?;
        if node_count == 0 {
            return Err(PersistError::Malformed(
                "a quadtree arena needs at least its root node".to_string(),
            ));
        }
        let mut nodes = Vec::with_capacity(node_count);
        for _ in 0..node_count {
            nodes.push(Node {
                first_child: cur.u32()?,
                child_count: cur.u32()?,
                entries_start: cur.u32()?,
                entries_end: cur.u32()?,
            });
        }
        let cells = cur.f64_vec(node_count.checked_mul(2 * k).ok_or_else(|| {
            PersistError::Malformed(format!("{node_count} cells of dimension {k} overflow"))
        })?)?;
        let entry_count = cur.count(4)?;
        let entries = cur.u32_vec(entry_count)?;
        if let Some(&bad) = entries.iter().find(|&&e| e as usize >= slab.len()) {
            return Err(PersistError::Malformed(format!(
                "entry id {bad} out of range for {} hyperplanes",
                slab.len()
            )));
        }
        for (idx, node) in nodes.iter().enumerate() {
            if node.entries_start > node.entries_end || node.entries_end as usize > entries.len() {
                return Err(PersistError::Malformed(format!(
                    "node {idx} entry range {}..{} escapes the {}-slot entry slab",
                    node.entries_start,
                    node.entries_end,
                    entries.len()
                )));
            }
            if node.first_child == NO_CHILDREN {
                if node.child_count != 0 {
                    return Err(PersistError::Malformed(format!(
                        "leaf node {idx} claims {} children",
                        node.child_count
                    )));
                }
            } else if node.child_count == 0
                || node.first_child as usize <= idx
                || u64::from(node.first_child) + u64::from(node.child_count) > node_count as u64
            {
                // Children must point strictly forward (the builder allocates
                // them after their parent), which is also what guarantees the
                // iterative traversal terminates on decoded arenas.
                return Err(PersistError::Malformed(format!(
                    "node {idx} child range {}+{} is invalid for {node_count} nodes",
                    node.first_child, node.child_count
                )));
            }
        }
        Ok(HyperplaneQuadtree {
            slab,
            nodes,
            cells,
            entries,
            root_cell,
            config,
            max_depth_reached,
        })
    }
}

/// Minimum number of entries across a level's frontier before split planning
/// is farmed out to the pool — below this the sign-test work cannot amortize
/// the dispatch overhead.  Shared with [`crate::cutting`].
pub(crate) const PARALLEL_BUILD_MIN_ENTRIES: usize = 4096;

/// Cap on the entries whose crossings the adaptive rules measure per node: a
/// deterministic strided subset (every `len/256`-th entry), plenty for a
/// robust median while keeping cut selection O(1) per node instead of O(n) —
/// without it, adaptive construction on large dense nodes costs more than
/// the probe time it saves.  Shared with [`crate::cutting`].
pub(crate) const CROSSING_SAMPLE_CAP: usize = 256;

/// The deterministic crossing-statistics sample: every `stride`-th entry,
/// capped at [`CROSSING_SAMPLE_CAP`] elements.  Thread-count independent, so
/// parallel and serial builds measure identical samples.
pub(crate) fn crossing_sample(entries: &[u32]) -> impl Iterator<Item = u32> + '_ {
    let stride = entries.len().div_ceil(CROSSING_SAMPLE_CAP).max(1);
    entries.iter().step_by(stride).copied()
}

/// A planned subdivision of one overfull node: the child cells and, for each
/// child, the subset of the parent's entries crossing it.  Pure function of
/// (slab, cell, entries, config), which is what lets planning run on any
/// thread while stitching stays serial and deterministic.
struct SplitPlan {
    cells: Vec<BoundingBox>,
    child_entries: Vec<Vec<u32>>,
}

/// Plans the subdivision of one node, or `None` when the cell cannot split
/// (degenerate on every axis) or no partition makes progress (every child
/// would inherit every entry).
///
/// Under [`SplitRule::Hybrid`] a census partition that makes no progress —
/// every median landing exactly on a point shared by all entries, so every
/// child inherits every entry — is retried with the midpoint partition
/// before the node is frozen into an oversized leaf.  Censuses that make
/// *poor* progress (medians merely *near* a shared point, each child
/// keeping most of the parent) are not second-guessed here: no per-node
/// greedy rule can see that such cuts starve the whole build of entry
/// budget, so that pathology is handled a level up by the per-build
/// midpoint fallback in [`HyperplaneQuadtree::build_from_slab_with`].
fn plan_split(
    slab: &HyperplaneSlab,
    cell: &BoundingBox,
    node_entries: &[u32],
    config: &QuadtreeConfig,
) -> Option<SplitPlan> {
    let partition = |cells: Vec<BoundingBox>| -> Option<SplitPlan> {
        if cells.is_empty() {
            return None;
        }
        let mut child_entries = Vec::with_capacity(cells.len());
        for child_cell in &cells {
            let mut ce = Vec::new();
            slab.filter_intersecting_into(node_entries, child_cell.lo(), child_cell.hi(), &mut ce);
            child_entries.push(ce);
        }
        if child_entries.iter().all(|c| c.len() == node_entries.len()) {
            return None;
        }
        Some(SplitPlan {
            cells,
            child_entries,
        })
    };
    match config.split {
        SplitRule::Midpoint => partition(subdivide(cell)),
        SplitRule::Hybrid => partition(hybrid_subdivide(slab, cell, node_entries))
            .or_else(|| partition(subdivide(cell))),
    }
}

/// The [`SplitRule::Hybrid`] partition of a cell.
///
/// Collects, per axis, the in-cell zero-crossings of a strided entry sample
/// ([`crossing_sample`]; solved along the axis through the cell centre — the
/// same measurement the cutting tree's [`crate::cutting`] cut selection
/// uses).  When a single axis carries at least 90% of all crossings *and* at
/// least half the sampled entries cross it, the bundle is effectively
/// perpendicular to that axis and one median cut
/// separates it best (2 children); otherwise every splittable axis splits at
/// its own median crossing — midpoint when the axis saw no crossings — which
/// keeps the quadrant structure (needed to separate diagonal bundles, which
/// no single-axis cut can) while placing the split planes where the data is.
/// With no crossings anywhere this degrades to the classic midpoint rule,
/// and when the measured cuts fail to separate anything — a bundle through
/// one shared point puts every median on that point — [`plan_split`]
/// retries the node with the midpoint partition before giving up.
fn hybrid_subdivide(
    slab: &HyperplaneSlab,
    cell: &BoundingBox,
    entries: &[u32],
) -> Vec<BoundingBox> {
    let k = cell.dim();
    let center = cell.center();
    let mut crossings: Vec<Vec<f64>> = vec![Vec::new(); k];
    let mut sampled = 0usize;
    for e in crossing_sample(entries) {
        sampled += 1;
        let row = slab.coeffs_row(e as usize);
        let offset = slab.offset(e as usize);
        for axis in 0..k {
            let coeff = row[axis];
            if coeff.abs() <= EPS {
                continue;
            }
            let mut rest = 0.0;
            for (j, c) in row.iter().enumerate() {
                if j != axis {
                    rest += c * center.coord(j);
                }
            }
            let x = -(rest + offset) / coeff;
            if x > cell.lo()[axis] + EPS && x < cell.hi()[axis] - EPS {
                crossings[axis].push(x);
            }
        }
    }
    let total: usize = crossings.iter().map(|c| c.len()).sum();
    if total == 0 {
        return subdivide(cell);
    }
    let mut dominant = 0;
    for axis in 1..k {
        if crossings[axis].len() > crossings[dominant].len() {
            dominant = axis;
        }
    }
    let dominant_count = crossings[dominant].len();
    if dominant_count * 10 >= total * 9 && dominant_count * 2 >= sampled {
        // Crossings are strictly interior (EPS margin), so both halves keep
        // positive extent and the no-progress guard sees a genuine cut.
        let at = median_inplace(&mut crossings[dominant]);
        let (low, high) = cell.split_at(dominant, at);
        return vec![low, high];
    }
    let mut cells = vec![cell.clone()];
    for (axis, axis_crossings) in crossings.iter_mut().enumerate() {
        if cell.extent(axis) <= 0.0 {
            continue;
        }
        let at = if axis_crossings.is_empty() {
            0.5 * (cell.lo()[axis] + cell.hi()[axis])
        } else {
            median_inplace(axis_crossings)
        };
        let mut split = Vec::with_capacity(cells.len() * 2);
        for c in cells {
            let (a, b) = c.split_at(axis, at);
            split.push(a);
            split.push(b);
        }
        cells = split;
    }
    cells
}

/// The (upper) median by `total_cmp`, found by in-place selection.
fn median_inplace(xs: &mut [f64]) -> f64 {
    let mid = xs.len() / 2;
    *xs.select_nth_unstable_by(mid, |a, b| a.total_cmp(b)).1
}

/// Splits a cell into its `2^k` children by halving every axis.  Axes with
/// (numerically) zero extent are not split; if every axis is degenerate the
/// function returns an empty vector to signal that subdivision is impossible.
fn subdivide(cell: &BoundingBox) -> Vec<BoundingBox> {
    let k = cell.dim();
    let mut splittable = Vec::new();
    for axis in 0..k {
        if cell.extent(axis) > 0.0 {
            splittable.push(axis);
        }
    }
    if splittable.is_empty() {
        return Vec::new();
    }
    let mut cells = vec![cell.clone()];
    for &axis in &splittable {
        let mid = 0.5 * (cell.lo()[axis] + cell.hi()[axis]);
        let mut next = Vec::with_capacity(cells.len() * 2);
        for c in cells {
            let (a, b) = c.split_at(axis, mid);
            next.push(a);
            next.push(b);
        }
        cells = next;
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2-D line `a·x + b·y + c = 0` as a hyperplane.
    fn line(a: f64, b: f64, c: f64) -> Hyperplane {
        Hyperplane::new(vec![a, b], c)
    }

    fn unit_box() -> BoundingBox {
        BoundingBox::new(vec![0.0, 0.0], vec![1.0, 1.0])
    }

    fn brute_force(hs: &[Hyperplane], q: &BoundingBox) -> Vec<usize> {
        (0..hs.len()).filter(|&i| hs[i].intersects_box(q)).collect()
    }

    #[test]
    fn subdivide_produces_2k_children() {
        let cells = subdivide(&unit_box());
        assert_eq!(cells.len(), 4);
        let total_volume: f64 = cells.iter().map(|c| c.volume()).sum();
        assert!((total_volume - 1.0).abs() < 1e-12);
        // Degenerate cell cannot be subdivided.
        let degenerate = BoundingBox::new(vec![0.5, 0.5], vec![0.5, 0.5]);
        assert!(subdivide(&degenerate).is_empty());
        // Cell flat on one axis splits only the other.
        let flat = BoundingBox::new(vec![0.0, 0.5], vec![1.0, 0.5]);
        assert_eq!(subdivide(&flat).len(), 2);
    }

    #[test]
    fn build_and_query_small() {
        // Diagonal and two horizontal-ish lines inside the unit box.
        let hs = vec![
            line(1.0, -1.0, 0.0),  // y = x
            line(0.0, 1.0, -0.25), // y = 0.25
            line(0.0, 1.0, -0.75), // y = 0.75
            line(1.0, 1.0, -10.0), // far away, never intersects the unit box
        ];
        let tree = HyperplaneQuadtree::build(&hs, unit_box(), QuadtreeConfig::default());
        assert_eq!(tree.len(), 4);
        assert!(!tree.is_empty());
        assert_eq!(tree.root_cell(), &unit_box());
        assert_eq!(tree.slab().len(), 4);
        let q = BoundingBox::new(vec![0.0, 0.0], vec![0.5, 0.5]);
        let got = tree.query(&hs, &q);
        assert_eq!(got, brute_force(&hs, &q));
        assert!(got.contains(&0));
        assert!(got.contains(&1));
        assert!(!got.contains(&3));
    }

    #[test]
    fn hybrid_census_falls_back_to_midpoint_on_shared_point_bundles() {
        // A pencil of lines through the single interior point (1.6, 1.6):
        // three vertical, three horizontal, two diagonal.  The crossing
        // census measures both per-axis medians at exactly 1.6, so the
        // hybrid quadrant corner lands on the shared point and every child
        // inherits every line — the clustered worst case.  The rule must
        // fall back to the midpoint partition (which sheds the axis-aligned
        // lines immediately) instead of freezing the root into one leaf.
        let hs = vec![
            line(1.0, 0.0, -1.6),
            line(1.0, 0.0, -1.6),
            line(1.0, 0.0, -1.6),
            line(0.0, 1.0, -1.6),
            line(0.0, 1.0, -1.6),
            line(0.0, 1.0, -1.6),
            line(1.0, -1.0, 0.0),
            line(1.0, 1.0, -3.2),
        ];
        let cell = BoundingBox::new(vec![0.0, 0.0], vec![4.0, 4.0]);
        let config = QuadtreeConfig {
            split: SplitRule::Hybrid,
            max_capacity: 2,
            ..QuadtreeConfig::default()
        };
        let tree = HyperplaneQuadtree::build(&hs, cell.clone(), config);
        assert!(
            tree.node_count() > 1,
            "inconclusive census must fall back to midpoint, not freeze the root"
        );
        // Probes stay exact, and a probe away from the pencil point no
        // longer scans the whole slab.
        for q in [
            BoundingBox::new(vec![0.1, 0.1], vec![0.4, 0.4]),
            BoundingBox::new(vec![3.0, 0.1], vec![3.4, 0.5]),
            BoundingBox::new(vec![1.5, 1.5], vec![1.7, 1.7]),
        ] {
            assert_eq!(tree.query(&hs, &q), brute_force(&hs, &q));
        }
    }

    #[test]
    fn query_whole_root_returns_everything_crossing_it() {
        let hs: Vec<Hyperplane> = (0..50)
            .map(|i| line(1.0, -1.0, -(i as f64) / 50.0))
            .collect();
        let tree = HyperplaneQuadtree::build(
            &hs,
            unit_box(),
            QuadtreeConfig {
                max_capacity: 4,
                max_depth: 12,
                ..QuadtreeConfig::default()
            },
        );
        let got = tree.query(&hs, &unit_box());
        assert_eq!(got, brute_force(&hs, &unit_box()));
        assert!(tree.node_count() > 1, "tree should have subdivided");
        assert!(tree.depth() >= 1);
    }

    #[test]
    fn query_into_reuses_scratch_across_probes() {
        let hs: Vec<Hyperplane> = (0..60)
            .map(|i| line(1.0, -1.0, -(i as f64) / 60.0))
            .collect();
        let tree = HyperplaneQuadtree::build(
            &hs,
            unit_box(),
            QuadtreeConfig {
                max_capacity: 4,
                ..QuadtreeConfig::default()
            },
        );
        let mut scratch = TraversalScratch::new();
        let mut out = Vec::new();
        for (x0, y0, side) in [(0.0, 0.0, 0.4), (0.5, 0.5, 0.3), (0.9, 0.1, 0.05)] {
            let q = BoundingBox::new(vec![x0, y0], vec![x0 + side, y0 + side]);
            tree.query_into(q.lo(), q.hi(), &mut scratch, &mut out);
            assert_eq!(out, brute_force(&hs, &q), "box {q:?}");
        }
    }

    #[test]
    fn query_agrees_with_brute_force_randomized() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let hs: Vec<Hyperplane> = (0..200)
            .map(|_| {
                line(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                )
            })
            .collect();
        let root = BoundingBox::new(vec![-1.0, -1.0], vec![1.0, 1.0]);
        let tree = HyperplaneQuadtree::build(
            &hs,
            root,
            QuadtreeConfig {
                max_capacity: 6,
                max_depth: 10,
                ..QuadtreeConfig::default()
            },
        );
        for _ in 0..25 {
            let x0 = rng.gen_range(-1.0..0.9);
            let y0 = rng.gen_range(-1.0..0.9);
            let q = BoundingBox::new(
                vec![x0, y0],
                vec![x0 + rng.gen_range(0.01..0.1), y0 + rng.gen_range(0.01..0.1)],
            );
            assert_eq!(tree.query(&hs, &q), brute_force(&hs, &q));
        }
    }

    #[test]
    fn three_dimensional_octree() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let hs: Vec<Hyperplane> = (0..100)
            .map(|_| {
                Hyperplane::new(
                    vec![
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                    ],
                    rng.gen_range(-0.5..0.5),
                )
            })
            .collect();
        let root = BoundingBox::new(vec![-1.0, -1.0, -1.0], vec![1.0, 1.0, 1.0]);
        let tree = HyperplaneQuadtree::build(&hs, root, QuadtreeConfig::default());
        for _ in 0..10 {
            let lo: Vec<f64> = (0..3).map(|_| rng.gen_range(-1.0..0.8)).collect();
            let hi: Vec<f64> = lo.iter().map(|l| l + rng.gen_range(0.05..0.2)).collect();
            let q = BoundingBox::new(lo, hi);
            assert_eq!(tree.query(&hs, &q), brute_force(&hs, &q));
        }
    }

    #[test]
    fn empty_tree_queries_cleanly() {
        let hs: Vec<Hyperplane> = Vec::new();
        let tree = HyperplaneQuadtree::build(&hs, unit_box(), QuadtreeConfig::default());
        assert!(tree.is_empty());
        assert_eq!(tree.query(&hs, &unit_box()), Vec::<usize>::new());
        assert_eq!(tree.node_count(), 1);
        let mut scratch = TraversalScratch::new();
        assert_eq!(tree.count_in_box(&[0.0, 0.0], &[1.0, 1.0], &mut scratch), 0);
    }

    #[test]
    fn count_in_box_matches_query_cardinality() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(43);
        let hs: Vec<Hyperplane> = (0..200)
            .map(|_| {
                line(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                )
            })
            .collect();
        let root = BoundingBox::new(vec![-1.0, -1.0], vec![1.0, 1.0]);
        let tree = HyperplaneQuadtree::build(
            &hs,
            root.clone(),
            QuadtreeConfig {
                max_capacity: 6,
                ..QuadtreeConfig::default()
            },
        );
        let mut scratch = TraversalScratch::new();
        // One scratch alternates freely between id and count drains; the box
        // covering the whole root cell takes the contained fast path at the
        // root node itself.
        for q in std::iter::once(root).chain((0..25).map(|_| {
            let x0 = rng.gen_range(-1.0..0.8);
            let y0 = rng.gen_range(-1.0..0.8);
            BoundingBox::new(
                vec![x0, y0],
                vec![x0 + rng.gen_range(0.01..0.2), y0 + rng.gen_range(0.01..0.2)],
            )
        })) {
            let ids = tree.query(&hs, &q);
            assert_eq!(
                tree.count_in_box(q.lo(), q.hi(), &mut scratch),
                ids.len(),
                "box {q:?}"
            );
            // The count drain left the bitmap clean for the next id query.
            let mut out = Vec::new();
            tree.query_into(q.lo(), q.hi(), &mut scratch, &mut out);
            assert_eq!(out, ids, "box {q:?}");
        }
    }

    #[test]
    fn clustered_lines_drive_depth_up() {
        // All lines pass very close to the same corner: under the classic
        // midpoint rule the quadtree keeps subdividing towards that corner
        // (the paper's worst case — pinned here to the rule it describes).
        let hs: Vec<Hyperplane> = (0..64).map(|i| line(1.0, -1.0, -1e-4 * i as f64)).collect();
        let cfg = QuadtreeConfig {
            max_capacity: 2,
            max_depth: 20,
            split: SplitRule::Midpoint,
            ..QuadtreeConfig::default()
        };
        let tree = HyperplaneQuadtree::build(&hs, unit_box(), cfg);
        assert!(
            tree.depth() >= 8,
            "clustered input should create a deep tree, got {}",
            tree.depth()
        );
        // Queries remain exact even in the degenerate case.
        let q = BoundingBox::new(vec![0.4, 0.4], vec![0.6, 0.6]);
        assert_eq!(tree.query(&hs, &q), brute_force(&hs, &q));
    }

    #[test]
    fn hybrid_split_tames_axis_aligned_clusters() {
        // A tight bundle of near-vertical lines at x ≈ 0.3: the midpoint
        // rule needs to bisect its way down to the 1e-4 spacing before
        // leaves thin out, while the hybrid rule sees all crossings on one
        // axis and cuts straight through the bundle's median every level.
        let hs: Vec<Hyperplane> = (0..64)
            .map(|i| line(1.0, 0.0, -0.3 - 1e-4 * i as f64))
            .collect();
        let build = |split| {
            HyperplaneQuadtree::build(
                &hs,
                unit_box(),
                QuadtreeConfig {
                    max_capacity: 2,
                    max_depth: 20,
                    split,
                    ..QuadtreeConfig::default()
                },
            )
        };
        let midpoint = build(SplitRule::Midpoint);
        let hybrid = build(SplitRule::Hybrid);
        assert!(
            hybrid.depth() < midpoint.depth(),
            "hybrid depth {} should undercut midpoint depth {}",
            hybrid.depth(),
            midpoint.depth()
        );
        for q in [
            BoundingBox::new(vec![0.29, 0.4], vec![0.31, 0.6]),
            BoundingBox::new(vec![0.0, 0.0], vec![0.01, 0.01]),
            unit_box(),
        ] {
            assert_eq!(hybrid.query(&hs, &q), brute_force(&hs, &q), "box {q:?}");
        }
        // The diagonal worst case stays exact under the hybrid rule too
        // (no axis-aligned rule can separate a diagonal bundle faster, but
        // correctness must not depend on the split geometry).
        let diag: Vec<Hyperplane> = (0..64).map(|i| line(1.0, -1.0, -1e-4 * i as f64)).collect();
        let tree = HyperplaneQuadtree::build(
            &diag,
            unit_box(),
            QuadtreeConfig {
                max_capacity: 2,
                max_depth: 20,
                split: SplitRule::Hybrid,
                ..QuadtreeConfig::default()
            },
        );
        let q = BoundingBox::new(vec![0.4, 0.4], vec![0.6, 0.6]);
        assert_eq!(tree.query(&diag, &q), brute_force(&diag, &q));
    }

    #[test]
    fn hybrid_split_agrees_with_brute_force_randomized() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        // Mix of diagonal, near-vertical and degenerate rows.
        let mut hs: Vec<Hyperplane> = (0..200)
            .map(|_| {
                line(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                )
            })
            .collect();
        hs.push(Hyperplane::new(vec![0.0, 0.0], 0.0));
        hs.push(Hyperplane::new(vec![0.0, 0.0], 1.0));
        for i in 0..40 {
            hs.push(line(1.0, 1e-6, -0.3 - 1e-5 * i as f64));
        }
        let root = BoundingBox::new(vec![-1.0, -1.0], vec![1.0, 1.0]);
        let tree = HyperplaneQuadtree::build(
            &hs,
            root,
            QuadtreeConfig {
                max_capacity: 4,
                max_depth: 12,
                split: SplitRule::Hybrid,
                ..QuadtreeConfig::default()
            },
        );
        for _ in 0..40 {
            // Query boxes stay inside the root cell: hyperplanes crossing a
            // box only outside the indexed region are by contract never
            // reported.
            let x0 = rng.gen_range(-1.0..0.7);
            let y0 = rng.gen_range(-1.0..0.7);
            let q = BoundingBox::new(
                vec![x0, y0],
                vec![x0 + rng.gen_range(0.01..0.3), y0 + rng.gen_range(0.01..0.3)],
            );
            assert_eq!(tree.query(&hs, &q), brute_force(&hs, &q), "box {q:?}");
        }
    }

    #[test]
    fn parallel_build_is_byte_identical_to_serial() {
        use eclipse_exec::ThreadPool;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(31337);
        // Enough hyperplanes that the root frontier crosses the parallel
        // planning threshold.
        let hs: Vec<Hyperplane> = (0..5000)
            .map(|_| {
                line(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                )
            })
            .collect();
        let root = BoundingBox::new(vec![-1.0, -1.0], vec![1.0, 1.0]);
        for split in [SplitRule::Midpoint, SplitRule::Hybrid] {
            let cfg = QuadtreeConfig {
                max_capacity: 16,
                max_depth: 10,
                split,
                ..QuadtreeConfig::default()
            };
            let serial = HyperplaneQuadtree::build(&hs, root.clone(), cfg);
            let pool = ThreadPool::with_threads(4);
            let parallel = HyperplaneQuadtree::build_from_slab_with(
                HyperplaneSlab::from_hyperplanes(&hs),
                root.clone(),
                cfg,
                Some(&pool),
            );
            let (mut a, mut b) = (Vec::new(), Vec::new());
            serial.encode_into(&mut a);
            parallel.encode_into(&mut b);
            assert_eq!(a, b, "split rule {split:?}");
        }
    }

    #[test]
    fn node_budget_caps_the_arena() {
        let hs: Vec<Hyperplane> = (0..128)
            .map(|i| line(1.0, -1.0, -(i as f64) / 128.0))
            .collect();
        let cfg = QuadtreeConfig {
            max_capacity: 1,
            max_depth: 30,
            max_nodes: 64,
            ..QuadtreeConfig::default()
        };
        let tree = HyperplaneQuadtree::build(&hs, unit_box(), cfg);
        // The budget may be exceeded by at most one sibling group.
        assert!(tree.node_count() <= 64 + 4, "got {}", tree.node_count());
        // Queries are exact regardless of where construction stopped.
        let q = BoundingBox::new(vec![0.1, 0.1], vec![0.9, 0.9]);
        assert_eq!(tree.query(&hs, &q), brute_force(&hs, &q));
    }

    #[test]
    fn snapshot_round_trips_byte_exactly() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(2026);
        let hs: Vec<Hyperplane> = (0..150)
            .map(|_| {
                line(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                )
            })
            .collect();
        let root = BoundingBox::new(vec![-1.0, -1.0], vec![1.0, 1.0]);
        let tree = HyperplaneQuadtree::build(
            &hs,
            root,
            QuadtreeConfig {
                max_capacity: 4,
                ..QuadtreeConfig::default()
            },
        );
        let mut bytes = Vec::new();
        tree.encode_into(&mut bytes);
        let mut cur = Cursor::new(&bytes);
        let back = HyperplaneQuadtree::decode(&mut cur).unwrap();
        cur.finish().unwrap();
        assert_eq!(back.config(), tree.config());
        assert_eq!(back.root_cell(), tree.root_cell());
        assert_eq!(back.node_count(), tree.node_count());
        assert_eq!(back.entry_count(), tree.entry_count());
        assert_eq!(back.depth(), tree.depth());
        // The decoded tree answers every probe identically.
        for _ in 0..20 {
            let x0 = rng.gen_range(-1.0..0.8);
            let y0 = rng.gen_range(-1.0..0.8);
            let q = BoundingBox::new(
                vec![x0, y0],
                vec![x0 + rng.gen_range(0.01..0.3), y0 + rng.gen_range(0.01..0.3)],
            );
            assert_eq!(back.query(&hs, &q), tree.query(&hs, &q), "box {q:?}");
        }
        // Re-encoding reproduces the bytes exactly (the golden-file property).
        let mut again = Vec::new();
        back.encode_into(&mut again);
        assert_eq!(again, bytes);
    }

    #[test]
    fn snapshot_decode_is_total_on_hostile_input() {
        let hs = vec![line(1.0, -1.0, 0.0), line(0.0, 1.0, -0.25)];
        let tree = HyperplaneQuadtree::build(&hs, unit_box(), QuadtreeConfig::default());
        let mut bytes = Vec::new();
        tree.encode_into(&mut bytes);
        // Every truncation errors cleanly.
        for cut in 0..bytes.len() {
            assert!(
                HyperplaneQuadtree::decode(&mut Cursor::new(&bytes[..cut])).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
        // A forward-pointing child range is required: rewire the root to
        // reference itself and the decoder must refuse (this is what keeps
        // traversal of decoded arenas terminating).
        let mut evil = Vec::new();
        let evil_tree = {
            let mut t = tree.clone();
            t.nodes[0].first_child = 0;
            t.nodes[0].child_count = 1;
            t
        };
        evil_tree.encode_into(&mut evil);
        assert!(matches!(
            HyperplaneQuadtree::decode(&mut Cursor::new(&evil)),
            Err(PersistError::Malformed(m)) if m.contains("child range")
        ));
        // An entry id beyond the slab is rejected.
        let mut evil = Vec::new();
        let evil_tree = {
            let mut t = tree.clone();
            if t.entries.is_empty() {
                t.entries.push(99);
                t.nodes[0].entries_start = 0;
                t.nodes[0].entries_end = 1;
            } else {
                t.entries[0] = 99;
            }
            t
        };
        evil_tree.encode_into(&mut evil);
        assert!(matches!(
            HyperplaneQuadtree::decode(&mut Cursor::new(&evil)),
            Err(PersistError::Malformed(m)) if m.contains("out of range")
        ));
    }

    #[test]
    #[should_panic(expected = "hyperplane slice")]
    fn query_with_wrong_slice_panics() {
        let hs = vec![line(1.0, -1.0, 0.0)];
        let tree = HyperplaneQuadtree::build(&hs, unit_box(), QuadtreeConfig::default());
        let wrong: Vec<Hyperplane> = Vec::new();
        let _ = tree.query(&wrong, &unit_box());
    }
}
