//! The line quadtree / hyperplane octree Intersection Index (§IV-B of the
//! paper).
//!
//! The index stores a set of hyperplanes (in the workspace: the *score
//! difference* hyperplanes of pairs of skyline points, living in the
//! `(d−1)`-dimensional weight-ratio space) inside a recursively subdivided
//! axis-aligned cell hierarchy.  Every internal node has `2^k` children (the
//! quadrants / octants of its cell); a cell is subdivided when more than
//! `max_capacity` hyperplanes cross it and the maximum depth has not been
//! reached.  Queries report exactly the stored hyperplanes intersecting an
//! axis-aligned query box (candidates are gathered from the leaves whose cells
//! intersect the box and then filtered with an exact hyperplane-box test, so
//! the result is never approximate).
//!
//! As the paper notes, the structure has very good average-case behaviour but
//! can degenerate to linear depth when all hyperplanes concentrate in the same
//! quadrant of every cell — exactly the worst case exercised by Figs. 13–14.
//! The [`crate::cutting`] module provides the counterpart with a bounded
//! worst case.

use serde::{Deserialize, Serialize};

use crate::hyperplane::Hyperplane;
use crate::point::BoundingBox;

/// Construction parameters for [`HyperplaneQuadtree`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct QuadtreeConfig {
    /// Maximum number of hyperplanes a cell may hold before it is subdivided
    /// (the paper's example uses 3).
    pub max_capacity: usize,
    /// Hard limit on the subdivision depth, guarding against unbounded
    /// recursion when many hyperplanes pass through a common region.
    pub max_depth: usize,
    /// Global budget on the number of tree nodes.  Unlike a point quadtree,
    /// a *hyperplane* quadtree duplicates entries across every child their
    /// hyperplane crosses, so in high dimensions an unbounded tree can grow
    /// to `2^{k·depth}` nodes; once the budget is exhausted the remaining
    /// cells simply stay leaves (queries remain exact, only pruning quality
    /// degrades).
    pub max_nodes: usize,
}

impl Default for QuadtreeConfig {
    fn default() -> Self {
        QuadtreeConfig {
            max_capacity: 8,
            max_depth: 16,
            max_nodes: 1 << 15,
        }
    }
}

#[derive(Clone, Debug, Serialize, Deserialize)]
enum Node {
    Leaf {
        cell: BoundingBox,
        entries: Vec<usize>,
    },
    Internal {
        cell: BoundingBox,
        children: Vec<Node>,
    },
}

impl Node {
    fn cell(&self) -> &BoundingBox {
        match self {
            Node::Leaf { cell, .. } | Node::Internal { cell, .. } => cell,
        }
    }
}

/// A quadtree (2-D) / octree (k-D) over hyperplanes.
///
/// The tree stores *indices* into the hyperplane slice supplied at
/// construction time; the caller keeps ownership of the hyperplanes and must
/// pass the same slice to [`HyperplaneQuadtree::query`].  This keeps the
/// index lean (the same hyperplane may be referenced from many leaves) and
/// mirrors how `eclipse-core` stores its intersection hyperplanes once and
/// indexes them twice (QUAD and CUTTING).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HyperplaneQuadtree {
    root: Node,
    config: QuadtreeConfig,
    len: usize,
    node_count: usize,
    max_depth_reached: usize,
}

impl HyperplaneQuadtree {
    /// Builds the index over `hyperplanes`, bounded by `cell` (hyperplanes
    /// not intersecting the root cell are simply never reported).
    pub fn build(hyperplanes: &[Hyperplane], cell: BoundingBox, config: QuadtreeConfig) -> Self {
        let all: Vec<usize> = (0..hyperplanes.len())
            .filter(|&i| hyperplanes[i].intersects_box(&cell))
            .collect();
        let mut node_count = 0usize;
        let mut max_depth_reached = 0usize;
        let root = Self::build_node(
            hyperplanes,
            cell,
            all,
            0,
            &config,
            &mut node_count,
            &mut max_depth_reached,
        );
        HyperplaneQuadtree {
            root,
            config,
            len: hyperplanes.len(),
            node_count,
            max_depth_reached,
        }
    }

    fn build_node(
        hyperplanes: &[Hyperplane],
        cell: BoundingBox,
        entries: Vec<usize>,
        depth: usize,
        config: &QuadtreeConfig,
        node_count: &mut usize,
        max_depth_reached: &mut usize,
    ) -> Node {
        *node_count += 1;
        *max_depth_reached = (*max_depth_reached).max(depth);
        if entries.len() <= config.max_capacity
            || depth >= config.max_depth
            || *node_count >= config.max_nodes
        {
            return Node::Leaf { cell, entries };
        }
        let children_cells = subdivide(&cell);
        // If the cell has become degenerate (zero extent on every axis), stop.
        if children_cells.is_empty() {
            return Node::Leaf { cell, entries };
        }
        let child_entries: Vec<Vec<usize>> = children_cells
            .iter()
            .map(|child_cell| {
                entries
                    .iter()
                    .copied()
                    .filter(|&i| hyperplanes[i].intersects_box(child_cell))
                    .collect()
            })
            .collect();
        // No-progress guard: when every child still contains every entry
        // (all hyperplanes cross all quadrants) further subdivision only
        // multiplies memory without improving pruning.
        if child_entries.iter().all(|c| c.len() == entries.len()) {
            return Node::Leaf { cell, entries };
        }
        let mut children = Vec::with_capacity(children_cells.len());
        for (child_cell, child_entry) in children_cells.into_iter().zip(child_entries) {
            children.push(Self::build_node(
                hyperplanes,
                child_cell,
                child_entry,
                depth + 1,
                config,
                node_count,
                max_depth_reached,
            ));
        }
        Node::Internal { cell, children }
    }

    /// The configuration the tree was built with.
    pub fn config(&self) -> QuadtreeConfig {
        self.config
    }

    /// Number of hyperplanes the tree was built over.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the tree indexes no hyperplanes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of tree nodes (diagnostic).
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Deepest level created during construction (diagnostic; the worst-case
    /// experiments of Fig. 13 drive this towards `max_depth`).
    pub fn depth(&self) -> usize {
        self.max_depth_reached
    }

    /// The root cell.
    pub fn root_cell(&self) -> &BoundingBox {
        self.root.cell()
    }

    /// Returns the indices of all hyperplanes intersecting `query`, in
    /// ascending order and without duplicates.
    ///
    /// `hyperplanes` must be the same slice the tree was built from.
    ///
    /// # Panics
    /// Panics if `hyperplanes.len()` differs from the construction-time count.
    pub fn query(&self, hyperplanes: &[Hyperplane], query: &BoundingBox) -> Vec<usize> {
        assert_eq!(
            hyperplanes.len(),
            self.len,
            "query must use the hyperplane slice the index was built from"
        );
        let mut seen = vec![false; self.len];
        let mut out = Vec::new();
        let mut stack = vec![&self.root];
        while let Some(node) = stack.pop() {
            if !node.cell().intersects(query) {
                continue;
            }
            match node {
                Node::Leaf { entries, .. } => {
                    for &i in entries {
                        if !seen[i] && hyperplanes[i].intersects_box(query) {
                            seen[i] = true;
                            out.push(i);
                        }
                    }
                }
                Node::Internal { children, .. } => {
                    for c in children {
                        stack.push(c);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }
}

/// Splits a cell into its `2^k` children by halving every axis.  Axes with
/// (numerically) zero extent are not split; if every axis is degenerate the
/// function returns an empty vector to signal that subdivision is impossible.
fn subdivide(cell: &BoundingBox) -> Vec<BoundingBox> {
    let k = cell.dim();
    let mut splittable = Vec::new();
    for axis in 0..k {
        if cell.extent(axis) > 0.0 {
            splittable.push(axis);
        }
    }
    if splittable.is_empty() {
        return Vec::new();
    }
    let mut cells = vec![cell.clone()];
    for &axis in &splittable {
        let mid = 0.5 * (cell.lo()[axis] + cell.hi()[axis]);
        let mut next = Vec::with_capacity(cells.len() * 2);
        for c in cells {
            let (a, b) = c.split_at(axis, mid);
            next.push(a);
            next.push(b);
        }
        cells = next;
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2-D line `a·x + b·y + c = 0` as a hyperplane.
    fn line(a: f64, b: f64, c: f64) -> Hyperplane {
        Hyperplane::new(vec![a, b], c)
    }

    fn unit_box() -> BoundingBox {
        BoundingBox::new(vec![0.0, 0.0], vec![1.0, 1.0])
    }

    fn brute_force(hs: &[Hyperplane], q: &BoundingBox) -> Vec<usize> {
        (0..hs.len()).filter(|&i| hs[i].intersects_box(q)).collect()
    }

    #[test]
    fn subdivide_produces_2k_children() {
        let cells = subdivide(&unit_box());
        assert_eq!(cells.len(), 4);
        let total_volume: f64 = cells.iter().map(|c| c.volume()).sum();
        assert!((total_volume - 1.0).abs() < 1e-12);
        // Degenerate cell cannot be subdivided.
        let degenerate = BoundingBox::new(vec![0.5, 0.5], vec![0.5, 0.5]);
        assert!(subdivide(&degenerate).is_empty());
        // Cell flat on one axis splits only the other.
        let flat = BoundingBox::new(vec![0.0, 0.5], vec![1.0, 0.5]);
        assert_eq!(subdivide(&flat).len(), 2);
    }

    #[test]
    fn build_and_query_small() {
        // Diagonal and two horizontal-ish lines inside the unit box.
        let hs = vec![
            line(1.0, -1.0, 0.0),  // y = x
            line(0.0, 1.0, -0.25), // y = 0.25
            line(0.0, 1.0, -0.75), // y = 0.75
            line(1.0, 1.0, -10.0), // far away, never intersects the unit box
        ];
        let tree = HyperplaneQuadtree::build(&hs, unit_box(), QuadtreeConfig::default());
        assert_eq!(tree.len(), 4);
        assert!(!tree.is_empty());
        let q = BoundingBox::new(vec![0.0, 0.0], vec![0.5, 0.5]);
        let got = tree.query(&hs, &q);
        assert_eq!(got, brute_force(&hs, &q));
        assert!(got.contains(&0));
        assert!(got.contains(&1));
        assert!(!got.contains(&3));
    }

    #[test]
    fn query_whole_root_returns_everything_crossing_it() {
        let hs: Vec<Hyperplane> = (0..50)
            .map(|i| line(1.0, -1.0, -(i as f64) / 50.0))
            .collect();
        let tree = HyperplaneQuadtree::build(
            &hs,
            unit_box(),
            QuadtreeConfig {
                max_capacity: 4,
                max_depth: 12,
                ..QuadtreeConfig::default()
            },
        );
        let got = tree.query(&hs, &unit_box());
        assert_eq!(got, brute_force(&hs, &unit_box()));
        assert!(tree.node_count() > 1, "tree should have subdivided");
        assert!(tree.depth() >= 1);
    }

    #[test]
    fn query_agrees_with_brute_force_randomized() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let hs: Vec<Hyperplane> = (0..200)
            .map(|_| {
                line(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                )
            })
            .collect();
        let root = BoundingBox::new(vec![-1.0, -1.0], vec![1.0, 1.0]);
        let tree = HyperplaneQuadtree::build(
            &hs,
            root,
            QuadtreeConfig {
                max_capacity: 6,
                max_depth: 10,
                ..QuadtreeConfig::default()
            },
        );
        for _ in 0..25 {
            let x0 = rng.gen_range(-1.0..0.9);
            let y0 = rng.gen_range(-1.0..0.9);
            let q = BoundingBox::new(
                vec![x0, y0],
                vec![x0 + rng.gen_range(0.01..0.1), y0 + rng.gen_range(0.01..0.1)],
            );
            assert_eq!(tree.query(&hs, &q), brute_force(&hs, &q));
        }
    }

    #[test]
    fn three_dimensional_octree() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let hs: Vec<Hyperplane> = (0..100)
            .map(|_| {
                Hyperplane::new(
                    vec![
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                    ],
                    rng.gen_range(-0.5..0.5),
                )
            })
            .collect();
        let root = BoundingBox::new(vec![-1.0, -1.0, -1.0], vec![1.0, 1.0, 1.0]);
        let tree = HyperplaneQuadtree::build(&hs, root, QuadtreeConfig::default());
        for _ in 0..10 {
            let lo: Vec<f64> = (0..3).map(|_| rng.gen_range(-1.0..0.8)).collect();
            let hi: Vec<f64> = lo.iter().map(|l| l + rng.gen_range(0.05..0.2)).collect();
            let q = BoundingBox::new(lo, hi);
            assert_eq!(tree.query(&hs, &q), brute_force(&hs, &q));
        }
    }

    #[test]
    fn empty_tree_queries_cleanly() {
        let hs: Vec<Hyperplane> = Vec::new();
        let tree = HyperplaneQuadtree::build(&hs, unit_box(), QuadtreeConfig::default());
        assert!(tree.is_empty());
        assert_eq!(tree.query(&hs, &unit_box()), Vec::<usize>::new());
        assert_eq!(tree.node_count(), 1);
    }

    #[test]
    fn clustered_lines_drive_depth_up() {
        // All lines pass very close to the same corner: the quadtree keeps
        // subdividing towards that corner (the paper's worst case).
        let hs: Vec<Hyperplane> = (0..64).map(|i| line(1.0, -1.0, -1e-4 * i as f64)).collect();
        let cfg = QuadtreeConfig {
            max_capacity: 2,
            max_depth: 20,
            ..QuadtreeConfig::default()
        };
        let tree = HyperplaneQuadtree::build(&hs, unit_box(), cfg);
        assert!(
            tree.depth() >= 8,
            "clustered input should create a deep tree, got {}",
            tree.depth()
        );
        // Queries remain exact even in the degenerate case.
        let q = BoundingBox::new(vec![0.4, 0.4], vec![0.6, 0.6]);
        assert_eq!(tree.query(&hs, &q), brute_force(&hs, &q));
    }

    #[test]
    #[should_panic(expected = "hyperplane slice")]
    fn query_with_wrong_slice_panics() {
        let hs = vec![line(1.0, -1.0, 0.0)];
        let tree = HyperplaneQuadtree::build(&hs, unit_box(), QuadtreeConfig::default());
        let wrong: Vec<Hyperplane> = Vec::new();
        let _ = tree.query(&wrong, &unit_box());
    }
}
