//! The one-dimensional arrangement induced on the x-axis by a set of dual
//! lines (§IV-A of the paper).
//!
//! Given `u` dual lines, their `C(u,2)` pairwise intersection abscissae
//! partition the x-axis into at most `C(u,2) + 1` maximal intervals inside
//! which the vertical order of the lines — and therefore the primal score
//! order of the corresponding points — does not change.  The paper's Order
//! Vector Index stores one *order vector* per interval; the Intersection
//! Index stores the sorted intersection abscissae together with the pair of
//! lines forming each intersection.  This module provides the geometric
//! machinery both are built from.

use serde::{Deserialize, Serialize};

use crate::approx::{total_cmp, EPS};
use crate::hyperplane::DualLine;

/// A single pairwise intersection event on the x-axis.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct IntersectionEvent {
    /// Abscissa of the intersection.
    pub x: f64,
    /// Index of the first line (position in the input slice).
    pub a: usize,
    /// Index of the second line.
    pub b: usize,
}

/// Computes all pairwise intersection events of the given dual lines, sorted
/// by ascending abscissa.  Parallel lines (equal slopes) produce no event.
pub fn intersection_events(lines: &[DualLine]) -> Vec<IntersectionEvent> {
    let mut events = Vec::with_capacity(lines.len() * lines.len().saturating_sub(1) / 2);
    for a in 0..lines.len() {
        for b in a + 1..lines.len() {
            if let Some(x) = lines[a].intersection_x(&lines[b]) {
                events.push(IntersectionEvent { x, a, b });
            }
        }
    }
    events.sort_by(|e1, e2| total_cmp(e1.x, e2.x));
    events
}

/// The order vector of the lines at abscissa `x`: `ov[k]` is the number of
/// lines whose primal score is strictly smaller than line `k`'s at the
/// weight-ratio `r = −x` — i.e. the number of lines that *dominate* line `k`
/// at that abscissa, exactly the quantity maintained by Algorithms 4–5 and 7
/// of the paper.
///
/// Ties (equal scores within [`EPS`]) do not count as domination, matching
/// the strict-dominance convention used throughout the workspace.
pub fn order_vector_at(lines: &[DualLine], x: f64) -> Vec<usize> {
    let r = -x;
    let scores: Vec<f64> = lines.iter().map(|l| l.score_at_ratio(r)).collect();
    scores
        .iter()
        .map(|sk| scores.iter().filter(|s| **s + EPS < *sk).count())
        .collect()
}

/// The interval partition of the x-axis induced by a sorted list of
/// intersection abscissae.
///
/// Interval `i` is `(boundary[i-1], boundary[i]]` with the conventions
/// `boundary[-1] = −∞` and `boundary[len] = +∞`; there are `len + 1`
/// intervals for `len` distinct boundaries.  Duplicate abscissae (within
/// [`EPS`]) are merged into a single boundary.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct IntervalPartition {
    boundaries: Vec<f64>,
}

impl IntervalPartition {
    /// Builds the partition from (not necessarily sorted, possibly duplicate)
    /// abscissae.
    pub fn new(mut xs: Vec<f64>) -> Self {
        xs.sort_by(|a, b| total_cmp(*a, *b));
        let mut boundaries: Vec<f64> = Vec::with_capacity(xs.len());
        for x in xs {
            match boundaries.last() {
                Some(last) if (x - last).abs() <= EPS => {}
                _ => boundaries.push(x),
            }
        }
        IntervalPartition { boundaries }
    }

    /// The number of intervals (`boundaries + 1`).
    pub fn num_intervals(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// The sorted, deduplicated interval boundaries.
    pub fn boundaries(&self) -> &[f64] {
        &self.boundaries
    }

    /// The index of the interval containing `x` (boundaries belong to the
    /// interval on their left, matching the half-open convention
    /// `(prev, boundary]` used in the paper's Figure 7).
    pub fn interval_containing(&self, x: f64) -> usize {
        // partition_point returns the number of boundaries strictly less than x
        // (up to EPS): those are the boundaries we have fully passed.
        self.boundaries.partition_point(|b| *b + EPS < x)
    }

    /// A representative abscissa strictly inside interval `i`, used to probe
    /// the line order within the interval (the paper's `v_i + ε` trick, Line
    /// 10 of Algorithm 4).
    ///
    /// # Panics
    /// Panics if `i >= num_intervals()`.
    pub fn representative(&self, i: usize) -> f64 {
        assert!(i < self.num_intervals(), "interval index out of range");
        let n = self.boundaries.len();
        if n == 0 {
            return 0.0;
        }
        if i == 0 {
            return self.boundaries[0] - 1.0;
        }
        if i == n {
            return self.boundaries[n - 1] + 1.0;
        }
        0.5 * (self.boundaries[i - 1] + self.boundaries[i])
    }

    /// Indices (into the original abscissa order after sorting/deduplication)
    /// of the boundaries lying strictly inside the open interval `(lo, hi)`.
    pub fn boundaries_in_range(&self, lo: f64, hi: f64) -> std::ops::Range<usize> {
        let start = self.boundaries.partition_point(|b| *b <= lo + EPS);
        let end = self.boundaries.partition_point(|b| *b < hi - EPS);
        start..end.max(start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    fn paper_lines() -> Vec<DualLine> {
        // Skyline points of the running example: p1(1,6), p2(4,4), p3(6,1).
        vec![
            DualLine::from_point(&Point::new(vec![1.0, 6.0])),
            DualLine::from_point(&Point::new(vec![4.0, 4.0])),
            DualLine::from_point(&Point::new(vec![6.0, 1.0])),
        ]
    }

    #[test]
    fn intersection_events_match_example4() {
        let events = intersection_events(&paper_lines());
        assert_eq!(events.len(), 3);
        // Sorted ascending: -1.5 (p2,p3), -1 (p1,p3), -2/3 (p1,p2).
        assert!((events[0].x - (-1.5)).abs() < 1e-12);
        assert_eq!((events[0].a, events[0].b), (1, 2));
        assert!((events[1].x - (-1.0)).abs() < 1e-12);
        assert_eq!((events[1].a, events[1].b), (0, 2));
        assert!((events[2].x - (-2.0 / 3.0)).abs() < 1e-12);
        assert_eq!((events[2].a, events[2].b), (0, 1));
    }

    #[test]
    fn intersection_events_skip_parallel_lines() {
        let lines = vec![
            DualLine::from_point(&Point::new(vec![2.0, 1.0])),
            DualLine::from_point(&Point::new(vec![2.0, 3.0])),
            DualLine::from_point(&Point::new(vec![1.0, 1.0])),
        ];
        let events = intersection_events(&lines);
        // Only the two non-parallel pairs intersect.
        assert_eq!(events.len(), 2);
    }

    #[test]
    fn order_vector_matches_example4_last_interval() {
        // In the interval (-2/3, 0] the order (closest to x-axis first) is p3, p2, p1,
        // giving ov = <2, 1, 0>.
        let lines = paper_lines();
        let ov = order_vector_at(&lines, -0.25);
        assert_eq!(ov, vec![2, 1, 0]);
        // First interval (-inf, -1.5]: order p1, p2, p3 -> ov = <0, 1, 2>.
        let ov0 = order_vector_at(&lines, -2.0);
        assert_eq!(ov0, vec![0, 1, 2]);
        // Interval (-1.5, -1]: <0, 2, 1> per Figure 7.
        let ov1 = order_vector_at(&lines, -1.25);
        assert_eq!(ov1, vec![0, 2, 1]);
        // Interval (-1, -2/3]: <1, 2, 0>.
        let ov2 = order_vector_at(&lines, -0.8);
        assert_eq!(ov2, vec![1, 2, 0]);
    }

    #[test]
    fn order_vector_handles_ties() {
        // Two identical points: neither dominates the other, both ov entries are 0
        // against each other; the third distinct point is dominated by both.
        let lines = vec![
            DualLine::from_point(&Point::new(vec![1.0, 1.0])),
            DualLine::from_point(&Point::new(vec![1.0, 1.0])),
            DualLine::from_point(&Point::new(vec![5.0, 5.0])),
        ];
        let ov = order_vector_at(&lines, -1.0);
        assert_eq!(ov[0], 0);
        assert_eq!(ov[1], 0);
        assert_eq!(ov[2], 2);
    }

    #[test]
    fn interval_partition_basics() {
        let part = IntervalPartition::new(vec![-2.0 / 3.0, -1.5, -1.0]);
        assert_eq!(part.num_intervals(), 4);
        assert_eq!(part.boundaries().len(), 3);
        // Figure 7: -1/4 lies in the last interval (-2/3, 0].
        assert_eq!(part.interval_containing(-0.25), 3);
        assert_eq!(part.interval_containing(-2.0), 0);
        assert_eq!(part.interval_containing(-1.25), 1);
        assert_eq!(part.interval_containing(-0.8), 2);
        // A boundary belongs to the interval on its left.
        assert_eq!(part.interval_containing(-1.5), 0);
        assert_eq!(part.interval_containing(-1.0), 1);
    }

    #[test]
    fn interval_partition_deduplicates() {
        let part = IntervalPartition::new(vec![1.0, 1.0 + 1e-12, 2.0]);
        assert_eq!(part.boundaries().len(), 2);
        assert_eq!(part.num_intervals(), 3);
    }

    #[test]
    fn interval_partition_representatives() {
        let part = IntervalPartition::new(vec![-1.5, -1.0, -2.0 / 3.0]);
        for i in 0..part.num_intervals() {
            let x = part.representative(i);
            assert_eq!(
                part.interval_containing(x),
                i,
                "representative of interval {i}"
            );
        }
        let empty = IntervalPartition::new(vec![]);
        assert_eq!(empty.num_intervals(), 1);
        assert_eq!(empty.interval_containing(123.0), 0);
        assert_eq!(empty.representative(0), 0.0);
    }

    #[test]
    fn boundaries_in_range_is_strict() {
        let part = IntervalPartition::new(vec![-1.5, -1.0, -2.0 / 3.0]);
        // Query range [-2, -0.25] contains all three boundaries.
        let r = part.boundaries_in_range(-2.0, -0.25);
        assert_eq!(r, 0..3);
        // Range (-1.5, -1.0): boundaries strictly inside -> none (both are endpoints).
        let r2 = part.boundaries_in_range(-1.5, -1.0);
        assert_eq!(r2.len(), 0);
        // Range (-1.6, -0.9) contains -1.5 and -1.0.
        let r3 = part.boundaries_in_range(-1.6, -0.9);
        assert_eq!(r3, 0..2);
    }
}
