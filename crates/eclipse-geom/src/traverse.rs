//! Reusable traversal state for the arena-based intersection indexes.
//!
//! Both [`crate::quadtree::HyperplaneQuadtree`] and
//! [`crate::cutting::CuttingTree`] walk their node arenas iteratively with an
//! explicit stack and deduplicate reported hyperplanes with a visited bitmap
//! (a hyperplane crossing many cells is stored in many leaves).  A
//! [`TraversalScratch`] owns both buffers so a steady-state probe performs no
//! heap allocations: the stack and bitmap are reused at their high-water
//! capacity, and the bitmap is left all-zero after every query by clearing
//! words during the result sweep.

/// Caller-provided scratch buffers for index queries.
///
/// One scratch serves any number of trees (of any size) sequentially; keep
/// one per worker thread when fanning probes out.
#[derive(Clone, Debug, Default)]
pub struct TraversalScratch {
    /// Explicit DFS stack of arena node indices.
    pub(crate) stack: Vec<u32>,
    /// Visited bitmap over hyperplane ids; all-zero between queries.
    visited: Vec<u64>,
    /// Gather buffer for a leaf's not-yet-marked entries, handed to the
    /// batched sign-test kernel
    /// ([`crate::hyperplane::HyperplaneSlab::filter_intersecting_into`]).
    pub(crate) pending: Vec<u32>,
    /// The kernel's output buffer (ids surviving the sign test).
    pub(crate) filtered: Vec<u32>,
}

/// How a node's cell relates to the query box.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum CellRelation {
    /// No overlap: prune the subtree.
    Disjoint,
    /// Partial overlap: descend with exact per-entry tests at the leaves.
    Overlaps,
    /// Cell fully inside the query box: report the whole subtree without
    /// sign tests.
    Contained,
}

/// Classifies cell `idx` of a flat cell buffer (`2k` values per node: `k`
/// lower corner coordinates then `k` upper) against the query box.
#[inline]
pub(crate) fn classify_cell(cells: &[f64], idx: usize, qlo: &[f64], qhi: &[f64]) -> CellRelation {
    let k = qlo.len();
    let base = idx * 2 * k;
    let (lo, hi) = cells[base..base + 2 * k].split_at(k);
    let mut contained = true;
    for j in 0..k {
        if lo[j] > qhi[j] || qlo[j] > hi[j] {
            return CellRelation::Disjoint;
        }
        contained &= qlo[j] <= lo[j] && hi[j] <= qhi[j];
    }
    if contained {
        CellRelation::Contained
    } else {
        CellRelation::Overlaps
    }
}

impl TraversalScratch {
    /// A scratch with empty buffers (they grow to the tree size on first
    /// use).
    pub fn new() -> Self {
        TraversalScratch::default()
    }

    /// Prepares the scratch for a query over `len` hyperplanes: clears the
    /// stack and sizes the bitmap.  The bitmap is already all-zero — every
    /// query ends with [`TraversalScratch::drain_into`], which clears the
    /// words it sweeps.
    pub(crate) fn begin(&mut self, len: usize) {
        self.stack.clear();
        self.visited.resize(len.div_ceil(64), 0);
        // A previous query over a larger tree may have left excess (zeroed)
        // words; `resize` truncated them, so the invariant holds either way.
    }

    /// Whether hyperplane `i` was already reported during this query.
    #[inline]
    pub(crate) fn is_marked(&self, i: usize) -> bool {
        self.visited[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Marks hyperplane `i` as reported.
    #[inline]
    pub(crate) fn mark(&mut self, i: usize) {
        self.visited[i / 64] |= 1u64 << (i % 64);
    }

    /// Sweeps the bitmap into `out` in ascending id order, zeroing every word
    /// on the way — this is both the sorted-output pass (replacing the old
    /// sort + dedup) and the cleanup that re-establishes the all-zero
    /// invariant.
    pub(crate) fn drain_into(&mut self, out: &mut Vec<usize>) {
        for (w, word) in self.visited.iter_mut().enumerate() {
            let mut bits = *word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                out.push(w * 64 + b);
                bits &= bits - 1;
            }
            *word = 0;
        }
    }

    /// The count-only twin of [`TraversalScratch::drain_into`]: popcounts the
    /// marked hyperplanes, zeroing every word on the way, without
    /// materializing a single id.  Backs the trees' `count_in_box` queries.
    pub(crate) fn drain_count(&mut self) -> usize {
        let mut count = 0usize;
        for word in self.visited.iter_mut() {
            count += word.count_ones() as usize;
            *word = 0;
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_drain_leaves_bitmap_clear() {
        let mut s = TraversalScratch::new();
        s.begin(130);
        for i in [5usize, 64, 127, 129, 0] {
            assert!(!s.is_marked(i));
            s.mark(i);
            assert!(s.is_marked(i));
        }
        // Marking twice is idempotent.
        s.mark(64);
        let mut out = Vec::new();
        s.drain_into(&mut out);
        assert_eq!(out, vec![0, 5, 64, 127, 129]);
        // The bitmap is clear again, so a follow-up query starts fresh.
        s.begin(130);
        for i in 0..130 {
            assert!(!s.is_marked(i));
        }
        let mut out2 = Vec::new();
        s.drain_into(&mut out2);
        assert!(out2.is_empty());
    }

    #[test]
    fn drain_count_matches_drain_into_and_clears() {
        let mut s = TraversalScratch::new();
        s.begin(200);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 199] {
            s.mark(i);
        }
        assert_eq!(s.drain_count(), 8);
        // The count drain re-established the all-zero invariant too.
        s.begin(200);
        for i in 0..200 {
            assert!(!s.is_marked(i));
        }
        assert_eq!(s.drain_count(), 0);
    }

    #[test]
    fn begin_resizes_across_tree_sizes() {
        let mut s = TraversalScratch::new();
        s.begin(1000);
        s.mark(999);
        let mut out = Vec::new();
        s.drain_into(&mut out);
        assert_eq!(out, vec![999]);
        // One scratch serves trees of different sizes back to back: the
        // drain re-established the all-zero invariant, so shrinking and
        // regrowing exposes no stale marks.
        s.begin(10);
        s.mark(3);
        out.clear();
        s.drain_into(&mut out);
        assert_eq!(out, vec![3]);
        s.begin(1000);
        for i in 0..1000 {
            assert!(!s.is_marked(i));
        }
    }
}
