//! A small, dense, two-phase simplex linear-programming solver.
//!
//! The convex-hull query of the paper ("the points that are the best under
//! *some* linear scoring function") is a membership problem naturally solved
//! by a tiny LP per point; rather than pulling in an external solver this
//! module implements the classic two-phase tableau simplex for problems of
//! the form
//!
//! ```text
//!   maximize   c · x
//!   subject to a_i · x  {≤, ≥, =}  b_i      (i = 1 … m)
//!              x ≥ 0
//! ```
//!
//! Problem sizes in this workspace are tiny (a handful of variables, up to a
//! few thousand constraints), so no effort is spent on sparse representations
//! or numerically sophisticated pivoting beyond Bland-style anti-cycling.

use crate::approx::EPS;

/// The sense of a linear constraint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConstraintSense {
    /// `a · x ≤ b`
    LessEq,
    /// `a · x ≥ b`
    GreaterEq,
    /// `a · x = b`
    Equal,
}

/// A single linear constraint `coeffs · x (sense) rhs`.
#[derive(Clone, Debug)]
pub struct Constraint {
    /// Coefficient vector (length = number of structural variables).
    pub coeffs: Vec<f64>,
    /// The constraint sense.
    pub sense: ConstraintSense,
    /// Right-hand side.
    pub rhs: f64,
}

impl Constraint {
    /// Convenience constructor for `coeffs · x ≤ rhs`.
    pub fn less_eq(coeffs: Vec<f64>, rhs: f64) -> Self {
        Constraint {
            coeffs,
            sense: ConstraintSense::LessEq,
            rhs,
        }
    }

    /// Convenience constructor for `coeffs · x ≥ rhs`.
    pub fn greater_eq(coeffs: Vec<f64>, rhs: f64) -> Self {
        Constraint {
            coeffs,
            sense: ConstraintSense::GreaterEq,
            rhs,
        }
    }

    /// Convenience constructor for `coeffs · x = rhs`.
    pub fn equal(coeffs: Vec<f64>, rhs: f64) -> Self {
        Constraint {
            coeffs,
            sense: ConstraintSense::Equal,
            rhs,
        }
    }
}

/// Outcome of solving a linear program.
#[derive(Clone, Debug, PartialEq)]
pub enum LpOutcome {
    /// An optimal solution was found.
    Optimal {
        /// The optimal objective value.
        objective: f64,
        /// The optimal assignment of the structural variables.
        solution: Vec<f64>,
    },
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded above on the feasible region.
    Unbounded,
}

/// A linear program in the standard "maximize with non-negative variables"
/// form described in the module documentation.
#[derive(Clone, Debug, Default)]
pub struct LinearProgram {
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
}

impl LinearProgram {
    /// Creates a maximization problem over `objective.len()` non-negative
    /// variables.
    pub fn maximize(objective: Vec<f64>) -> Self {
        LinearProgram {
            objective,
            constraints: Vec::new(),
        }
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Adds a constraint.
    ///
    /// # Panics
    /// Panics if the coefficient vector length does not match the number of
    /// variables.
    pub fn add_constraint(&mut self, c: Constraint) -> &mut Self {
        assert_eq!(
            c.coeffs.len(),
            self.num_vars(),
            "constraint arity must match the number of variables"
        );
        self.constraints.push(c);
        self
    }

    /// Solves the program with the two-phase simplex method.
    pub fn solve(&self) -> LpOutcome {
        Simplex::new(self).solve()
    }
}

/// Dense tableau simplex working representation.
struct Simplex {
    /// Tableau rows: one per constraint; columns: structural variables,
    /// slack/surplus variables, artificial variables, RHS.
    rows: Vec<Vec<f64>>,
    /// Index of the basic variable of each row.
    basis: Vec<usize>,
    num_structural: usize,
    num_slack: usize,
    num_artificial: usize,
    objective: Vec<f64>,
}

impl Simplex {
    fn new(lp: &LinearProgram) -> Self {
        let n = lp.num_vars();
        let m = lp.constraints.len();

        // Count slack/surplus and artificial columns.
        let mut num_slack = 0usize;
        let mut num_artificial = 0usize;
        for c in &lp.constraints {
            // After normalizing to rhs >= 0 the senses may flip, so decide on
            // the normalized sense.
            let sense = normalized_sense(c);
            match sense {
                ConstraintSense::LessEq => num_slack += 1,
                ConstraintSense::GreaterEq => {
                    num_slack += 1;
                    num_artificial += 1;
                }
                ConstraintSense::Equal => num_artificial += 1,
            }
        }

        let total_cols = n + num_slack + num_artificial + 1; // +1 for RHS
        let mut rows = vec![vec![0.0; total_cols]; m];
        let mut basis = vec![0usize; m];

        let mut slack_cursor = 0usize;
        let mut artificial_cursor = 0usize;
        for (i, c) in lp.constraints.iter().enumerate() {
            let flip = c.rhs < 0.0;
            let sign = if flip { -1.0 } else { 1.0 };
            for (j, &a) in c.coeffs.iter().enumerate() {
                rows[i][j] = sign * a;
            }
            rows[i][total_cols - 1] = sign * c.rhs;
            let sense = normalized_sense(c);
            match sense {
                ConstraintSense::LessEq => {
                    let col = n + slack_cursor;
                    rows[i][col] = 1.0;
                    basis[i] = col;
                    slack_cursor += 1;
                }
                ConstraintSense::GreaterEq => {
                    let s_col = n + slack_cursor;
                    rows[i][s_col] = -1.0;
                    slack_cursor += 1;
                    let a_col = n + num_slack + artificial_cursor;
                    rows[i][a_col] = 1.0;
                    basis[i] = a_col;
                    artificial_cursor += 1;
                }
                ConstraintSense::Equal => {
                    let a_col = n + num_slack + artificial_cursor;
                    rows[i][a_col] = 1.0;
                    basis[i] = a_col;
                    artificial_cursor += 1;
                }
            }
        }

        Simplex {
            rows,
            basis,
            num_structural: n,
            num_slack,
            num_artificial,
            objective: lp.objective.clone(),
        }
    }

    fn total_cols(&self) -> usize {
        self.num_structural + self.num_slack + self.num_artificial + 1
    }

    fn rhs_col(&self) -> usize {
        self.total_cols() - 1
    }

    fn solve(mut self) -> LpOutcome {
        // Phase 1: minimize the sum of artificial variables (maximize its
        // negation).  Skip when there are no artificials.
        if self.num_artificial > 0 {
            let art_start = self.num_structural + self.num_slack;
            let art_end = art_start + self.num_artificial;
            let mut cost = vec![0.0; self.total_cols() - 1];
            for slot in &mut cost[art_start..art_end] {
                *slot = -1.0;
            }
            let (value, bounded) = self.optimize(&cost);
            debug_assert!(bounded, "phase-1 objective is always bounded");
            if value < -1e-7 {
                return LpOutcome::Infeasible;
            }
            // Drive any artificial variable still in the basis out of it (it
            // must have value ~0); if impossible the row is redundant.
            for row in 0..self.rows.len() {
                if self.basis[row] >= art_start && self.basis[row] < art_end {
                    let pivot_col = (0..art_start).find(|&c| self.rows[row][c].abs() > 1e-9);
                    if let Some(col) = pivot_col {
                        self.pivot(row, col);
                    }
                }
            }
        }

        // Phase 2: optimize the real objective over structural columns.
        let mut cost = vec![0.0; self.total_cols() - 1];
        cost[..self.num_structural].copy_from_slice(&self.objective);
        // Artificial columns are forbidden in phase 2.
        let art_start = self.num_structural + self.num_slack;
        for c in cost.iter_mut().skip(art_start) {
            *c = f64::NEG_INFINITY;
        }
        let (value, bounded) = self.optimize(&cost);
        if !bounded {
            return LpOutcome::Unbounded;
        }
        let mut solution = vec![0.0; self.num_structural];
        for (row, &b) in self.basis.iter().enumerate() {
            if b < self.num_structural {
                solution[b] = self.rows[row][self.rhs_col()];
            }
        }
        LpOutcome::Optimal {
            objective: value,
            solution,
        }
    }

    /// Runs the primal simplex for the cost vector `cost` (maximization);
    /// returns the objective value and whether the problem was bounded.
    /// Columns with cost `-∞` are never entered.
    fn optimize(&mut self, cost: &[f64]) -> (f64, bool) {
        let rhs_col = self.rhs_col();
        let max_iters = 50 * (self.rows.len() + cost.len()).max(100);
        for _ in 0..max_iters {
            // Reduced costs: c_j - c_B · B^{-1} A_j.  Since we keep the
            // tableau in canonical form with respect to the basis, the
            // reduced cost is c_j - Σ_rows c_{basis(row)} * a_{row,j}.
            let basis_cost: Vec<f64> = self
                .basis
                .iter()
                .map(|&b| if cost[b].is_finite() { cost[b] } else { 0.0 })
                .collect();
            let mut entering: Option<usize> = None;
            let mut best_reduced = 1e-9;
            for (j, &cost_j) in cost.iter().enumerate() {
                if !cost_j.is_finite() {
                    continue;
                }
                if self.basis.contains(&j) {
                    continue;
                }
                let mut reduced = cost_j;
                for (row, bc) in basis_cost.iter().enumerate() {
                    reduced -= bc * self.rows[row][j];
                }
                if reduced > best_reduced {
                    best_reduced = reduced;
                    entering = Some(j);
                }
            }
            let Some(enter) = entering else {
                // Optimal.
                let mut value = 0.0;
                for (row, &b) in self.basis.iter().enumerate() {
                    if cost[b].is_finite() {
                        value += cost[b] * self.rows[row][rhs_col];
                    }
                }
                return (value, true);
            };
            // Ratio test.
            let mut leaving: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for row in 0..self.rows.len() {
                let a = self.rows[row][enter];
                if a > 1e-9 {
                    let ratio = self.rows[row][rhs_col] / a;
                    if ratio < best_ratio - 1e-12
                        || (ratio < best_ratio + 1e-12
                            && leaving.is_some_and(|l| self.basis[row] < self.basis[l]))
                    {
                        best_ratio = ratio;
                        leaving = Some(row);
                    }
                }
            }
            let Some(leave) = leaving else {
                return (f64::INFINITY, false);
            };
            self.pivot(leave, enter);
        }
        // Iteration limit reached — treat the current (feasible) point as the
        // answer; in practice this is never hit for the tiny LPs we solve.
        let mut value = 0.0;
        for (row, &b) in self.basis.iter().enumerate() {
            if cost[b].is_finite() {
                value += cost[b] * self.rows[row][rhs_col];
            }
        }
        (value, true)
    }

    fn pivot(&mut self, pivot_row: usize, pivot_col: usize) {
        let cols = self.total_cols();
        let pivot_val = self.rows[pivot_row][pivot_col];
        debug_assert!(pivot_val.abs() > 1e-12, "pivot on a ~zero element");
        for c in 0..cols {
            self.rows[pivot_row][c] /= pivot_val;
        }
        for r in 0..self.rows.len() {
            if r == pivot_row {
                continue;
            }
            let factor = self.rows[r][pivot_col];
            if factor.abs() <= EPS * EPS {
                continue;
            }
            for c in 0..cols {
                self.rows[r][c] -= factor * self.rows[pivot_row][c];
            }
        }
        self.basis[pivot_row] = pivot_col;
    }
}

fn normalized_sense(c: &Constraint) -> ConstraintSense {
    if c.rhs >= 0.0 {
        c.sense
    } else {
        match c.sense {
            ConstraintSense::LessEq => ConstraintSense::GreaterEq,
            ConstraintSense::GreaterEq => ConstraintSense::LessEq,
            ConstraintSense::Equal => ConstraintSense::Equal,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_optimal(outcome: &LpOutcome, expected_obj: f64) -> Vec<f64> {
        match outcome {
            LpOutcome::Optimal {
                objective,
                solution,
            } => {
                assert!(
                    (objective - expected_obj).abs() < 1e-6,
                    "objective {objective} != expected {expected_obj}"
                );
                solution.clone()
            }
            other => panic!("expected Optimal, got {other:?}"),
        }
    }

    #[test]
    fn simple_two_variable_maximization() {
        // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0 -> optimum 12 at (4, 0).
        let mut lp = LinearProgram::maximize(vec![3.0, 2.0]);
        lp.add_constraint(Constraint::less_eq(vec![1.0, 1.0], 4.0));
        lp.add_constraint(Constraint::less_eq(vec![1.0, 3.0], 6.0));
        let sol = assert_optimal(&lp.solve(), 12.0);
        assert!((sol[0] - 4.0).abs() < 1e-6);
        assert!(sol[1].abs() < 1e-6);
    }

    #[test]
    fn problem_with_equality_constraint() {
        // max x + y s.t. x + y = 1, x <= 0.3 -> optimum 1 with x <= 0.3.
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0]);
        lp.add_constraint(Constraint::equal(vec![1.0, 1.0], 1.0));
        lp.add_constraint(Constraint::less_eq(vec![1.0, 0.0], 0.3));
        let sol = assert_optimal(&lp.solve(), 1.0);
        assert!(sol[0] <= 0.3 + 1e-6);
        assert!((sol[0] + sol[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn problem_with_greater_eq_constraints() {
        // min x + 2y  s.t. x + y >= 3, y >= 1  (as a maximization of -(x+2y)).
        // Optimum: x = 2, y = 1, value -(4) = -4.
        let mut lp = LinearProgram::maximize(vec![-1.0, -2.0]);
        lp.add_constraint(Constraint::greater_eq(vec![1.0, 1.0], 3.0));
        lp.add_constraint(Constraint::greater_eq(vec![0.0, 1.0], 1.0));
        let sol = assert_optimal(&lp.solve(), -4.0);
        assert!((sol[0] - 2.0).abs() < 1e-6);
        assert!((sol[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_problem() {
        // x >= 2 and x <= 1 cannot both hold.
        let mut lp = LinearProgram::maximize(vec![1.0]);
        lp.add_constraint(Constraint::greater_eq(vec![1.0], 2.0));
        lp.add_constraint(Constraint::less_eq(vec![1.0], 1.0));
        assert_eq!(lp.solve(), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_problem() {
        // max x with only x >= 1: unbounded above.
        let mut lp = LinearProgram::maximize(vec![1.0]);
        lp.add_constraint(Constraint::greater_eq(vec![1.0], 1.0));
        assert_eq!(lp.solve(), LpOutcome::Unbounded);
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // -x <= -2  <=>  x >= 2; max -x -> optimum -2 at x = 2.
        let mut lp = LinearProgram::maximize(vec![-1.0]);
        lp.add_constraint(Constraint::less_eq(vec![-1.0], -2.0));
        let sol = assert_optimal(&lp.solve(), -2.0);
        assert!((sol[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_constraints_terminate() {
        // Redundant and degenerate constraints must not cycle.
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0]);
        lp.add_constraint(Constraint::less_eq(vec![1.0, 1.0], 1.0));
        lp.add_constraint(Constraint::less_eq(vec![1.0, 1.0], 1.0));
        lp.add_constraint(Constraint::less_eq(vec![2.0, 2.0], 2.0));
        lp.add_constraint(Constraint::equal(vec![1.0, -1.0], 0.0));
        let sol = assert_optimal(&lp.solve(), 1.0);
        assert!((sol[0] - 0.5).abs() < 1e-6);
        assert!((sol[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn hull_membership_style_lp() {
        // "Is p best for some convex weight vector?" formulated as
        // max t s.t. w·(q - p) - t >= 0 for all q, Σw = 1, w >= 0, t = t+ - t-.
        // Dataset from the paper's Figure 1: p1(1,6), p2(4,4), p3(6,1), p4(8,5).
        // p1 and p3 are hull points (t* > 0 is achievable only weakly: for p1
        // pick w = (1,0)… actually w·(q-p1) > 0 for all q means p1 strictly best).
        let points = [
            vec![1.0, 6.0],
            vec![4.0, 4.0],
            vec![6.0, 1.0],
            vec![8.0, 5.0],
        ];
        let is_hull = |idx: usize| -> bool {
            // Variables: w1, w2, t+, t-.
            let mut lp = LinearProgram::maximize(vec![0.0, 0.0, 1.0, -1.0]);
            for (q, coords) in points.iter().enumerate() {
                if q == idx {
                    continue;
                }
                let dx = coords[0] - points[idx][0];
                let dy = coords[1] - points[idx][1];
                lp.add_constraint(Constraint::greater_eq(vec![dx, dy, -1.0, 1.0], 0.0));
            }
            lp.add_constraint(Constraint::equal(vec![1.0, 1.0, 0.0, 0.0], 1.0));
            match lp.solve() {
                LpOutcome::Optimal { objective, .. } => objective > 1e-7,
                LpOutcome::Unbounded => true,
                LpOutcome::Infeasible => false,
            }
        };
        assert!(is_hull(0), "p1 is on the origin-view hull");
        assert!(is_hull(2), "p3 is on the origin-view hull");
        assert!(!is_hull(3), "p4 is not on the origin-view hull");
        // p2 = (4,4) lies above the segment p1–p3 (at x=4 the segment is at
        // y = 6 - 5*(3/5) = 3), so it is NOT a hull-query point.
        assert!(!is_hull(1), "p2 is dominated by a mixture of p1 and p3");
    }
}
