//! Property-based tests for the geometry substrate: bounding boxes,
//! hyperplane/box predicates, the duality transform, the LP solver and the
//! linear-algebra helpers.

use proptest::prelude::*;

use eclipse_exec::ThreadPool;
use eclipse_geom::cutting::{CutRule, CuttingTree, CuttingTreeConfig};
use eclipse_geom::dual::{score, score_difference_hyperplane, DualHyperplane};
use eclipse_geom::hyperplane::{DualLine, Hyperplane, HyperplaneSlab};
use eclipse_geom::linalg::Matrix;
use eclipse_geom::lp::{Constraint, LinearProgram, LpOutcome};
use eclipse_geom::point::{BoundingBox, Point};
use eclipse_geom::quadtree::{HyperplaneQuadtree, QuadtreeConfig, SplitRule};
use eclipse_geom::traverse::TraversalScratch;

fn point_strategy(d: usize) -> impl Strategy<Value = Point> {
    proptest::collection::vec(-10.0f64..10.0, d).prop_map(Point::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The enclosing box contains every input point, and union is commutative
    /// and monotone.
    #[test]
    fn bbox_enclosing_and_union(
        pts in proptest::collection::vec(proptest::collection::vec(-5.0f64..5.0, 3), 1..30),
    ) {
        let points: Vec<Point> = pts.into_iter().map(Point::new).collect();
        let bbox = BoundingBox::enclosing(&points).unwrap();
        for p in &points {
            prop_assert!(bbox.contains_point(p));
        }
        let a = BoundingBox::from_point(&points[0]);
        let u1 = bbox.union(&a);
        let u2 = a.union(&bbox);
        prop_assert_eq!(&u1, &u2);
        prop_assert!(u1.contains_box(&bbox));
        prop_assert!(u1.volume() + 1e-12 >= bbox.volume());
    }

    /// min/max weighted sums over a box bound the value at any contained point.
    #[test]
    fn bbox_weighted_sum_bounds_hold(
        lo in proptest::collection::vec(-5.0f64..0.0, 2..5),
        extent in proptest::collection::vec(0.0f64..5.0, 2..5),
        weights in proptest::collection::vec(-3.0f64..3.0, 2..5),
        t in proptest::collection::vec(0.0f64..1.0, 2..5),
    ) {
        let d = lo.len().min(extent.len()).min(weights.len()).min(t.len());
        let lo = &lo[..d];
        let hi: Vec<f64> = lo.iter().zip(&extent[..d]).map(|(l, e)| l + e).collect();
        let bbox = BoundingBox::new(lo.to_vec(), hi.clone());
        let inner: Vec<f64> = lo
            .iter()
            .zip(hi.iter())
            .zip(&t[..d])
            .map(|((l, h), t)| l + (h - l) * t)
            .collect();
        let w = &weights[..d];
        let value: f64 = inner.iter().zip(w).map(|(x, w)| x * w).sum();
        prop_assert!(bbox.min_weighted_sum(w) <= value + 1e-9);
        prop_assert!(bbox.max_weighted_sum(w) + 1e-9 >= value);
    }

    /// A hyperplane intersects a box iff its value changes sign over the box
    /// corners (the definition used by every index structure).
    #[test]
    fn hyperplane_box_intersection_matches_corner_signs(
        coeffs in proptest::collection::vec(-2.0f64..2.0, 2..4),
        offset in -2.0f64..2.0,
        lo in proptest::collection::vec(-3.0f64..3.0, 2..4),
        extent in proptest::collection::vec(0.0f64..2.0, 2..4),
    ) {
        let d = coeffs.len().min(lo.len()).min(extent.len());
        let h = Hyperplane::new(coeffs[..d].to_vec(), offset);
        let hi: Vec<f64> = lo[..d].iter().zip(&extent[..d]).map(|(l, e)| l + e).collect();
        let bbox = BoundingBox::new(lo[..d].to_vec(), hi);
        let corner_values: Vec<f64> = bbox.corners().iter().map(|c| h.eval(c.coords())).collect();
        let min = corner_values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = corner_values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let expected = min <= 1e-9 && max >= -1e-9;
        prop_assert_eq!(h.intersects_box(&bbox), expected);
    }

    /// Dual line evaluation is consistent with the primal score at every ratio.
    #[test]
    fn dual_line_score_consistency(p in point_strategy(2), r in 0.01f64..10.0) {
        let line = DualLine::from_point(&p);
        let s = p.weighted_sum(&[r, 1.0]);
        prop_assert!((line.score_at_ratio(r) - s).abs() < 1e-9);
        prop_assert!((-line.value_at(-r) - s).abs() < 1e-9);
    }

    /// The dual hyperplane of a point evaluates consistently with `score`, and
    /// the score-difference hyperplane is the difference of scores.
    #[test]
    fn dual_hyperplane_consistency(
        a in point_strategy(4),
        b in point_strategy(4),
        r in proptest::collection::vec(0.01f64..5.0, 3),
    ) {
        let ha = DualHyperplane::from_point(&a);
        prop_assert!((ha.score_at_ratio(&r) - score(&a, &r)).abs() < 1e-9);
        let diff = score_difference_hyperplane(&a, &b);
        prop_assert!((diff.eval(&r) - (score(&a, &r) - score(&b, &r))).abs() < 1e-9);
    }

    /// Solving A·x = b and multiplying back recovers b (when solvable).
    #[test]
    fn linalg_solve_round_trip(
        rows in proptest::collection::vec(proptest::collection::vec(-3.0f64..3.0, 3), 3),
        x in proptest::collection::vec(-3.0f64..3.0, 3),
    ) {
        let m = Matrix::from_row_vecs(rows);
        let b = m.mul_vec(&x);
        if let Some(solved) = m.solve(&b) {
            let back = m.mul_vec(&solved);
            for (u, v) in back.iter().zip(b.iter()) {
                prop_assert!((u - v).abs() < 1e-6);
            }
        } else {
            // Singular matrices must have deficient rank.
            prop_assert!(m.rank() < 3);
        }
    }

    /// The slab predicates agree with the per-object [`Hyperplane`] ones on
    /// arbitrary rows and boxes, degenerate rows included.
    #[test]
    fn slab_predicates_match_hyperplane_predicates(
        rows in proptest::collection::vec(
            (proptest::collection::vec(-2.0f64..2.0, 2), -2.0f64..2.0),
            1..40,
        ),
        zero_rows in proptest::collection::vec(-2.0f64..2.0, 0..4),
        lo in proptest::collection::vec(-3.0f64..3.0, 2),
        extent in proptest::collection::vec(0.0f64..3.0, 2),
    ) {
        let mut hs: Vec<Hyperplane> = rows
            .into_iter()
            .map(|(c, o)| Hyperplane::new(c, o))
            .collect();
        // Degenerate rows (all-zero coefficients) exercise the special case.
        hs.extend(zero_rows.into_iter().map(|o| Hyperplane::new(vec![0.0, 0.0], o)));
        let slab = HyperplaneSlab::from_hyperplanes(&hs);
        let hi: Vec<f64> = lo.iter().zip(&extent).map(|(l, e)| l + e).collect();
        let bbox = BoundingBox::new(lo.clone(), hi.clone());
        for (i, h) in hs.iter().enumerate() {
            prop_assert_eq!(
                slab.intersects_box(i, &lo, &hi),
                h.intersects_box(&bbox),
                "row {}", i
            );
            if !slab.is_degenerate(i) {
                let (min, max) = slab.min_max_over_box(i, &lo, &hi);
                prop_assert!((min - h.min_over_box(&bbox)).abs() < 1e-12);
                prop_assert!((max - h.max_over_box(&bbox)).abs() < 1e-12);
            }
        }
    }

    /// The arena-backed QUAD and CUTTING trees report exactly the hyperplanes
    /// a naive `intersects_box` filter reports, for any hyperplane set and
    /// query box — through both the compatibility `query` and the
    /// scratch-reusing `query_into` paths.
    #[test]
    fn arena_trees_match_naive_filter(
        rows in proptest::collection::vec(
            (proptest::collection::vec(-1.0f64..1.0, 2), -1.0f64..1.0),
            0..120,
        ),
        qlo in proptest::collection::vec(-1.0f64..0.9, 2),
        side in 0.01f64..0.5,
        cap in 1usize..8,
    ) {
        let hs: Vec<Hyperplane> = rows
            .into_iter()
            .map(|(c, o)| Hyperplane::new(c, o))
            .collect();
        let root = BoundingBox::new(vec![-1.0, -1.0], vec![1.0, 1.0]);
        let qhi: Vec<f64> = qlo.iter().map(|l| (l + side).min(1.0)).collect();
        let query = BoundingBox::new(qlo.clone(), qhi.clone());
        let expected: Vec<usize> = (0..hs.len())
            .filter(|&i| hs[i].intersects_box(&query))
            .collect();
        let quad = HyperplaneQuadtree::build(
            &hs,
            root.clone(),
            QuadtreeConfig { max_capacity: cap, ..QuadtreeConfig::default() },
        );
        let cut = CuttingTree::build(
            &hs,
            root,
            CuttingTreeConfig { max_capacity: cap, ..CuttingTreeConfig::default() },
        );
        prop_assert_eq!(quad.query(&hs, &query), expected.clone());
        prop_assert_eq!(cut.query(&hs, &query), expected.clone());
        // The zero-alloc path returns the same ids, and one scratch serves
        // both trees back to back.
        let mut scratch = TraversalScratch::new();
        let mut out = Vec::new();
        quad.query_into(&qlo, &qhi, &mut scratch, &mut out);
        prop_assert_eq!(&out, &expected);
        cut.query_into(&qlo, &qhi, &mut scratch, &mut out);
        prop_assert_eq!(&out, &expected);
    }

    /// Parallel construction is byte-identical to serial construction: for
    /// random hyperplane sets — including a clustered bundle dense enough to
    /// push deep levels past the parallel-dispatch threshold, and degenerate
    /// all-zero rows — building on a 1-thread and a 4-thread pool yields the
    /// same snapshot bytes under every split/cut rule, both unbounded and
    /// with node/entry budgets small enough to truncate a frontier level
    /// mid-chunk (the final-chunk case where `SampledCrossings` draws used
    /// to depend on how much budget earlier nodes had consumed).
    #[test]
    fn parallel_build_matches_serial_bytes(
        rows in proptest::collection::vec(
            (proptest::collection::vec(-1.0f64..1.0, 2), -1.0f64..1.0),
            0..60,
        ),
        cluster_n in 60usize..110,
        cluster_x in -0.8f64..0.8,
        zero_rows in 0usize..3,
        cap in 1usize..3,
        max_nodes in 9usize..41,
        max_entries in 300usize..2000,
    ) {
        let mut hs: Vec<Hyperplane> = rows
            .into_iter()
            .map(|(c, o)| Hyperplane::new(c, o))
            .collect();
        // A tight vertical bundle: every line crosses O(2^depth) cells per
        // level, so level-entry totals blow past the dispatch threshold.
        for i in 0..cluster_n {
            hs.push(Hyperplane::new(
                vec![1.0, 0.0],
                -cluster_x - 1e-4 * i as f64,
            ));
        }
        for _ in 0..zero_rows {
            hs.push(Hyperplane::new(vec![0.0, 0.0], 0.5));
        }
        let root = BoundingBox::new(vec![-1.0, -1.0], vec![1.0, 1.0]);
        let single = ThreadPool::with_threads(1);
        let quad_pool = ThreadPool::with_threads(4);
        // (usize::MAX, usize::MAX) leaves the default budgets in place; the
        // drawn pair is tight enough that the clustered bundle truncates a
        // level mid-chunk.
        for (nodes_budget, entries_budget) in [(usize::MAX, usize::MAX), (max_nodes, max_entries)] {
            for split in [SplitRule::Midpoint, SplitRule::Hybrid] {
                let mut config =
                    QuadtreeConfig { max_capacity: cap, split, ..QuadtreeConfig::default() };
                config.max_nodes = config.max_nodes.min(nodes_budget);
                config.max_entries = config.max_entries.min(entries_budget);
                let mut bytes = Vec::new();
                HyperplaneQuadtree::build_from_slab_with(
                    HyperplaneSlab::from_hyperplanes(&hs),
                    root.clone(),
                    config,
                    Some(&single),
                )
                .encode_into(&mut bytes);
                let mut par_bytes = Vec::new();
                HyperplaneQuadtree::build_from_slab_with(
                    HyperplaneSlab::from_hyperplanes(&hs),
                    root.clone(),
                    config,
                    Some(&quad_pool),
                )
                .encode_into(&mut par_bytes);
                prop_assert_eq!(&bytes, &par_bytes, "quadtree {:?} budgets {:?}",
                    split, (nodes_budget, entries_budget));
            }
            for cut in [CutRule::SampledCrossings, CutRule::MedianExtents] {
                let mut config =
                    CuttingTreeConfig { max_capacity: cap, cut, ..CuttingTreeConfig::default() };
                config.max_nodes = config.max_nodes.min(nodes_budget);
                config.max_entries = config.max_entries.min(entries_budget);
                let mut bytes = Vec::new();
                CuttingTree::build_from_slab_with(
                    HyperplaneSlab::from_hyperplanes(&hs),
                    root.clone(),
                    config,
                    Some(&single),
                )
                .encode_into(&mut bytes);
                let mut par_bytes = Vec::new();
                CuttingTree::build_from_slab_with(
                    HyperplaneSlab::from_hyperplanes(&hs),
                    root.clone(),
                    config,
                    Some(&quad_pool),
                )
                .encode_into(&mut par_bytes);
                prop_assert_eq!(&bytes, &par_bytes, "cutting {:?} budgets {:?}",
                    cut, (nodes_budget, entries_budget));
            }
        }
    }

    /// LP solutions are feasible and no corner of a random box beats the optimum.
    #[test]
    fn lp_optimum_dominates_box_corners(
        c in proptest::collection::vec(-2.0f64..2.0, 2),
        cap in proptest::collection::vec(0.5f64..4.0, 2),
    ) {
        // maximize c·x subject to x_i <= cap_i, x >= 0.
        let mut lp = LinearProgram::maximize(c.clone());
        lp.add_constraint(Constraint::less_eq(vec![1.0, 0.0], cap[0]));
        lp.add_constraint(Constraint::less_eq(vec![0.0, 1.0], cap[1]));
        match lp.solve() {
            LpOutcome::Optimal { objective, solution } => {
                prop_assert!(solution[0] >= -1e-7 && solution[0] <= cap[0] + 1e-7);
                prop_assert!(solution[1] >= -1e-7 && solution[1] <= cap[1] + 1e-7);
                // The optimum of a linear function over a box is a corner value.
                let mut best = f64::NEG_INFINITY;
                for xc in [0.0, cap[0]] {
                    for yc in [0.0, cap[1]] {
                        best = best.max(c[0] * xc + c[1] * yc);
                    }
                }
                prop_assert!((objective - best).abs() < 1e-6);
            }
            other => prop_assert!(false, "bounded LP must be optimal, got {other:?}"),
        }
    }
}
