//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types so that
//! downstream users with the real serde can persist them, but nothing in the
//! workspace itself serializes through serde (CSV I/O is hand-rolled in
//! `eclipse-data::io`).  These derives therefore expand to nothing: the
//! attribute is accepted and type-checked away.  Swapping in the real
//! `serde`/`serde_derive` restores full impls without touching any source.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
