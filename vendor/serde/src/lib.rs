//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` derive macros (as no-ops, see
//! `serde_derive`) and marker traits of the same names so that both
//! `#[derive(Serialize, Deserialize)]` and trait bounds compile.  No actual
//! serialization framework is included; the workspace's on-disk formats are
//! hand-rolled in `eclipse-data::io`.

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker form of serde's `Serialize` trait (no methods in this stand-in).
pub trait Serialize {}

/// Marker form of serde's `Deserialize` trait (no methods in this stand-in).
pub trait Deserialize<'de>: Sized {}
