//! Offline stand-in for the `rand_chacha` crate.
//!
//! Provides [`ChaCha8Rng`] — an actual 8-round ChaCha keystream generator,
//! seeded the same way as `rand_chacha`'s `seed_from_u64` (the 64-bit seed
//! becomes the first word pair of the 256-bit key, remaining key words zero).
//! The stream for a given seed is stable across runs and platforms, which is
//! what the workspace's dataset generators rely on for reproducible
//! experiments.  It is not guaranteed to be word-for-word identical to the
//! real crate's stream.

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]

use rand::{RngCore, SeedableRng};

/// A ChaCha random number generator with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// 4x4 matrix of state words: constants, key, counter, nonce.
    state: [u32; 16],
    /// Words of the current block not yet handed out.
    buffer: [u32; 16],
    /// Next unread index into `buffer` (16 = exhausted).
    index: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 8;

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buffer[self.index];
        self.index += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4] = seed as u32;
        state[5] = (seed >> 32) as u32;
        // Remaining key words, counter and nonce start at zero.
        ChaCha8Rng {
            state,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniform_floats_land_in_unit_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(20210614);
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&v));
        }
    }
}
