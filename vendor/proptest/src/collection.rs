//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::test_runner::TestRng;
use crate::Strategy;

/// A range of collection sizes: `lo` inclusive, `hi` exclusive.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range {}..{}", r.start, r.end);
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy producing `Vec`s whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.hi - self.size.lo <= 1 {
            self.size.lo
        } else {
            rng.gen_uniform(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
