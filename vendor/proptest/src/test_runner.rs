//! The deterministic RNG behind the [`proptest!`](crate::proptest) harness.

use rand::rngs::StdRng;
use rand::{RngCore, SampleRange, SeedableRng};

/// Deterministic per-case random source.
///
/// Seeded from the test name and case index only, so every run of the suite
/// (locally and in CI) exercises exactly the same inputs.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// The RNG for case `case` of the test named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the test name keeps distinct tests on distinct streams.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x5eed)),
        }
    }

    /// Draws a uniform sample from a half-open range.
    pub fn gen_uniform<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(&mut self.inner)
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
