//! Offline stand-in for `proptest`.
//!
//! Reimplements the subset of the proptest API the workspace's
//! property-based tests use: the [`proptest!`] macro with a
//! `#![proptest_config(...)]` header, range and tuple strategies,
//! [`collection::vec`], [`Strategy::prop_map`], and the
//! `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from the real crate, by design:
//!
//! * inputs are drawn from a **deterministic** per-case RNG (no persisted
//!   failure seeds, no environment-dependent entropy), so CI runs are
//!   perfectly reproducible;
//! * there is **no shrinking** — a failing case panics with the generated
//!   inputs left to the assertion message;
//! * `prop_assert*` panic immediately instead of returning `Err`.
//!
//! The strategy combinators keep proptest's names and shapes so the real
//! crate can be swapped back in from the manifest alone.

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]

use std::ops::Range;

pub mod collection;
pub mod test_runner;

use test_runner::TestRng;

/// Run-time configuration for a [`proptest!`] block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property is executed with.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_uniform(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f64, f32, i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// Constant strategy: a cloneable value generates itself.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The macros, traits and types most tests want in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Defines property-based tests.
///
/// Supports the form used throughout this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn my_property(x in 0u64..100, v in proptest::collection::vec(0.0f64..1.0, 1..10)) {
///         prop_assert!(v.len() < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg); $($rest)*);
    };
    ($(#[$meta:meta])* fn $($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::ProptestConfig::default()); $(#[$meta])* fn $($rest)*);
    };
    (@munch ($cfg:expr);) => {};
    (@munch ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut proptest_rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut proptest_rng);)+
                $body
            }
        }
        $crate::proptest!(@munch ($cfg); $($rest)*);
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Ranges respect their bounds and tuples compose.
        #[test]
        fn ranges_and_tuples(
            x in 0u64..100,
            (lo, width) in (0.5f64..1.0, 0.0f64..2.0),
            v in crate::collection::vec(-1.0f64..1.0, 2..6),
        ) {
            prop_assert!(x < 100);
            prop_assert!((0.5..1.0).contains(&lo) && (0.0..2.0).contains(&width));
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|c| (-1.0..1.0).contains(c)));
        }

        /// `prop_map` applies the mapping function.
        #[test]
        fn map_applies(n in 1usize..10) {
            let doubled = crate::collection::vec(Just(1u64), n).prop_map(|v| v.len() * 2);
            let mut rng = crate::test_runner::TestRng::for_case("map_applies_inner", 0);
            prop_assert_eq!(doubled.generate(&mut rng), n * 2);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        let r = 0.0f64..1.0;
        assert_eq!(r.clone().generate(&mut a), r.generate(&mut b));
    }
}
