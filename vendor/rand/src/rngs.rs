//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// Expands a 64-bit seed into a well-mixed state stream (SplitMix64).
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
///
/// Fast, passes the usual statistical batteries, and — like the real
/// `rand::rngs::StdRng` — makes no reproducibility promise beyond "the same
/// seed yields the same stream within the same crate version".
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    pub(crate) fn from_u64_with_stream(seed: u64, stream: u64) -> Self {
        let mut sm = seed ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        Self::from_u64_with_stream(state, 0)
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }
}
