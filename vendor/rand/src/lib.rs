//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of `rand` APIs the codebase uses are reimplemented here on a
//! xoshiro256++ generator with SplitMix64 seeding.  The subset is
//! deliberately small — `Rng::gen_range`, `Rng::gen`, `SeedableRng`,
//! [`rngs::StdRng`] and [`seq::SliceRandom`] — and is API-compatible with
//! rand 0.8 for those items, so swapping the real crate back in is a
//! one-line manifest change.
//!
//! The streams are deterministic for a given seed (the property every test
//! and dataset generator in this workspace relies on) but are **not** the
//! same streams the real `rand` crate would produce.

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod rngs;
pub mod seq;

use std::ops::Range;

/// The core of a random number generator: a source of `u64` values.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32` in `[0, 1)`, integers over their full range, fair bools).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Samples `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can be sampled from uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Converts 53 random bits into a uniform `f64` in `[0, 1)`.
#[inline]
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types with a uniform sampler over half-open ranges.
///
/// The single blanket `SampleRange` impl below mirrors the real crate's
/// shape: unifying `Range<T>: SampleRange<U>` pins `U = T`, which is what
/// lets float-literal ranges (`rng.gen_range(-0.05..0.05)`) infer `f64`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a uniform sample from `[low, high)`.
    fn sample_in<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, rng)
    }
}

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        assert!(low < high, "cannot sample empty range {low}..{high}");
        let v = low + (high - low) * unit_f64(rng);
        // Guard against rounding up to the excluded endpoint.
        if v >= high {
            low
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_in<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        assert!(low < high, "cannot sample empty range {low}..{high}");
        let v = low + (high - low) * unit_f64(rng) as f32;
        if v >= high {
            low
        } else {
            v
        }
    }
}

macro_rules! impl_int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = (high as i128) - (low as i128);
                assert!(span > 0, "cannot sample empty integer range");
                let v = (rng.next_u64() as i128) % span;
                (low as i128 + v) as $t
            }
        }
    )*};
}

impl_int_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Types that can be drawn from the standard distribution via [`Rng::gen`].
pub trait StandardSample: Sized {
    /// Draws one standard-distribution sample.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The traits and types most callers want in scope.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(-2.5..4.0);
            assert!((-2.5..4.0).contains(&f));
            let i = rng.gen_range(0..4);
            assert!((0..4).contains(&i));
            let u = rng.gen_range(3usize..150);
            assert!((3..150).contains(&u));
        }
    }

    #[test]
    fn unit_samples_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn choose_multiple_returns_distinct_elements() {
        let mut rng = StdRng::seed_from_u64(9);
        let xs: Vec<usize> = (0..50).collect();
        let picked: Vec<usize> = xs.choose_multiple(&mut rng, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        let set: std::collections::HashSet<_> = picked.iter().collect();
        assert_eq!(set.len(), 10);
    }
}
