//! Sequence-related extensions (the `SliceRandom` subset).

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type of the slice.
    type Item;

    /// Returns a uniformly chosen element, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Returns `amount` distinct elements chosen uniformly without
    /// replacement (all of them, in random order, if `amount >= len`).
    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&Self::Item>;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&T> {
        let amount = amount.min(self.len());
        // Partial Fisher–Yates over an index table: O(len) space, O(amount)
        // swaps — cheap for the small sample sizes the indexes use.
        let mut indices: Vec<usize> = (0..self.len()).collect();
        for i in 0..amount {
            let j = rng.gen_range(i..indices.len());
            indices.swap(i, j);
        }
        indices
            .into_iter()
            .take(amount)
            .map(|i| &self[i])
            .collect::<Vec<_>>()
            .into_iter()
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            self.swap(i, j);
        }
    }
}
