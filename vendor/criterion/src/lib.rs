//! Offline stand-in for `criterion`.
//!
//! Implements the API surface the workspace's bench targets use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkGroup::bench_function`], [`BenchmarkId`], [`Bencher::iter`],
//! [`criterion_group!`] and [`criterion_main!`] — backed by a plain
//! wall-clock runner instead of criterion's statistical machinery.  Each
//! benchmark warms up once, then runs until the configured measurement time
//! (or sample count) is exhausted, and prints `name … mean-per-iter` lines.
//!
//! `CRITERION_STUB_SAMPLES` (env) caps iterations per benchmark, which CI
//! can use to smoke-run the benches quickly.

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The identifier of one benchmark within a group: a function name plus an
/// optional parameter rendering (`"QUAD/1024"`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            id: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { id: name }
    }
}

/// Top-level benchmark driver (criterion's entry type).
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            default_measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("[bench group] {name}");
        let sample_size = self.default_sample_size;
        let measurement_time = self.default_measurement_time;
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
            measurement_time,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let report = run_bench(
            self.default_sample_size,
            self.default_measurement_time,
            |b| f(b),
        );
        eprintln!("  {:<40} {}", id.id, report);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sampling settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of timed iterations.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; the stub has no separate warm-up
    /// phase beyond its single priming iteration.
    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Sets the wall-clock budget for the timed iterations.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        let report = run_bench(self.sample_size, self.measurement_time, |b| f(b, input));
        eprintln!("  {}/{:<40} {}", self.name, id.id, report);
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let report = run_bench(self.sample_size, self.measurement_time, |b| f(b));
        eprintln!("  {}/{:<40} {}", self.name, id.id, report);
        self
    }

    /// Ends the group (criterion renders summaries here; the stub prints as
    /// it goes).
    pub fn finish(self) {}
}

/// Throughput hint (accepted, not reported).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to benchmark closures; [`Bencher::iter`] does the timing.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    report: Option<String>,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One priming run (warm caches, fault pages) outside the timing.
        black_box(routine());
        let cap = sample_cap(self.sample_size);
        let budget = self.measurement_time;
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < cap as u64 {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= budget {
                break;
            }
        }
        let mean = start.elapsed().as_secs_f64() / iters.max(1) as f64;
        self.report = Some(format!("{} /iter ({iters} iters)", format_secs(mean)));
    }
}

fn sample_cap(configured: usize) -> usize {
    std::env::var("CRITERION_STUB_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(configured)
        .max(1)
}

fn run_bench(
    sample_size: usize,
    measurement_time: Duration,
    mut f: impl FnMut(&mut Bencher),
) -> String {
    let mut bencher = Bencher {
        sample_size,
        measurement_time,
        report: None,
    };
    f(&mut bencher);
    bencher
        .report
        .unwrap_or_else(|| "no measurement (Bencher::iter never called)".to_string())
}

fn format_secs(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($target:path),+ $(,)?) => {
        pub fn $group_name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `fn main` running the given groups (bench targets set
/// `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(10));
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::new("count", 1), &7u64, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            })
        });
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
        assert!(runs >= 1);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("QUAD", 128).id, "QUAD/128");
        assert_eq!(BenchmarkId::from(String::from("x")).id, "x");
    }
}
