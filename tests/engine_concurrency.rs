//! Concurrency tests for the query facade: the engine is shared across
//! threads, indexes are built lazily under contention, and every thread sees
//! identical, baseline-consistent answers.

use std::sync::Arc;

use eclipse_core::algo::baseline::eclipse_baseline;
use eclipse_core::index::IntersectionIndexKind;
use eclipse_core::query::Algorithm;
use eclipse_core::{EclipseEngine, WeightRatioBox};
use eclipse_data::synthetic::{Distribution, SyntheticConfig};

#[test]
fn concurrent_queries_agree_with_baseline() {
    let pts = SyntheticConfig::new(600, 3, Distribution::Independent, 321).generate();
    let expected: Vec<Vec<usize>> = [(0.18, 5.67), (0.36, 2.75), (0.58, 1.73), (0.84, 1.19)]
        .iter()
        .map(|&(lo, hi)| {
            eclipse_baseline(&pts, &WeightRatioBox::uniform(3, lo, hi).unwrap()).unwrap()
        })
        .collect();
    let engine = Arc::new(EclipseEngine::new(pts).unwrap());

    let mut handles = Vec::new();
    for t in 0..8usize {
        let engine = Arc::clone(&engine);
        let expected = expected.clone();
        handles.push(std::thread::spawn(move || {
            let ranges = [(0.18, 5.67), (0.36, 2.75), (0.58, 1.73), (0.84, 1.19)];
            for (i, &(lo, hi)) in ranges.iter().enumerate() {
                let b = WeightRatioBox::uniform(3, lo, hi).unwrap();
                let alg = match t % 3 {
                    0 => Algorithm::IndexQuadtree,
                    1 => Algorithm::IndexCuttingTree,
                    _ => Algorithm::Transform,
                };
                assert_eq!(
                    engine.eclipse_with(&b, alg).unwrap(),
                    expected[i],
                    "thread {t}"
                );
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn concurrent_index_builds_yield_one_shared_index() {
    let pts = SyntheticConfig::new(400, 3, Distribution::Correlated, 11).generate();
    let engine = Arc::new(EclipseEngine::new(pts).unwrap());
    let mut handles = Vec::new();
    for _ in 0..6 {
        let engine = Arc::clone(&engine);
        handles.push(std::thread::spawn(move || {
            engine.build_index(IntersectionIndexKind::Quadtree).unwrap()
        }));
    }
    let indexes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    // All threads end up with a handle to an equivalent index (same skyline
    // coverage and intersection count), and the engine caches one of them.
    let reference = engine.build_index(IntersectionIndexKind::Quadtree).unwrap();
    for idx in indexes {
        assert_eq!(idx.skyline_len(), reference.skyline_len());
        assert_eq!(idx.num_intersections(), reference.num_intersections());
    }
}

#[test]
fn parallel_experiment_fanout_with_crossbeam_style_threads() {
    // Mimics how the benchmark harness fans out dataset families across
    // threads: each thread owns its dataset and engine, no shared state.
    let families: Vec<(Distribution, u64)> = vec![
        (Distribution::Correlated, 1),
        (Distribution::Independent, 2),
        (Distribution::AntiCorrelated, 3),
    ];
    let handles: Vec<_> = families
        .into_iter()
        .map(|(dist, seed)| {
            std::thread::spawn(move || {
                let pts = SyntheticConfig::new(300, 3, dist, seed).generate();
                let engine = EclipseEngine::new(pts).unwrap();
                let b = WeightRatioBox::uniform(3, 0.36, 2.75).unwrap();
                let auto = engine.eclipse(&b).unwrap();
                let base = engine.eclipse_with(&b, Algorithm::Baseline).unwrap();
                assert_eq!(auto, base, "{dist:?}");
                auto.len()
            })
        })
        .collect();
    let sizes: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    // Anti-correlated data yields at least as many eclipse points as
    // correlated data (same ordering the paper's Figure 10 shows for time).
    assert!(sizes[2] >= sizes[0]);
}
