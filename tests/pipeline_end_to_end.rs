//! End-to-end pipeline tests: generate a workload → persist it → reload it →
//! build the engine and indexes → query with preferences → verify against the
//! baseline — the full path a downstream user of the library would take.

mod common;

use eclipse_core::algo::baseline::eclipse_baseline;
use eclipse_core::index::IntersectionIndexKind;
use eclipse_core::prefs::{ImportanceLevel, PreferenceSpec};
use eclipse_core::query::Algorithm;
use eclipse_core::{EclipseEngine, WeightRatioBox};
use eclipse_data::io::{read_points_csv, write_points_csv};
use eclipse_data::survey::{run_survey, SurveyConfig};
use eclipse_data::synthetic::{Distribution, SyntheticConfig};

#[test]
fn generate_persist_reload_query() {
    let pts = SyntheticConfig::new(500, 3, Distribution::Independent, 1234).generate();
    let path = common::TempPath::new("inde.csv");
    write_points_csv(path.path(), &pts, Some(&["a", "b", "c"])).unwrap();
    let reloaded = read_points_csv(path.path()).unwrap();
    assert_eq!(reloaded, pts);
    drop(path);

    let engine = EclipseEngine::new(reloaded).unwrap();
    let b = WeightRatioBox::uniform(3, 0.36, 2.75).unwrap();
    let via_engine = engine.eclipse(&b).unwrap();
    let via_baseline = eclipse_baseline(&engine.points(), &b).unwrap();
    assert_eq!(via_engine, via_baseline);
}

#[test]
fn engine_full_query_surface() {
    let pts = eclipse_data::nba::nba_dataset(700, 3, 99);
    let engine = EclipseEngine::new(pts).unwrap();

    // Index both ways and check agreement with the baseline on several boxes.
    engine.build_index(IntersectionIndexKind::Quadtree).unwrap();
    engine
        .build_index(IntersectionIndexKind::CuttingTree)
        .unwrap();
    for (lo, hi) in [(0.18, 5.67), (0.36, 2.75), (0.84, 1.19)] {
        let b = WeightRatioBox::uniform(3, lo, hi).unwrap();
        let expected = engine.eclipse_with(&b, Algorithm::Baseline).unwrap();
        for alg in [
            Algorithm::Auto,
            Algorithm::Transform,
            Algorithm::IndexQuadtree,
            Algorithm::IndexCuttingTree,
        ] {
            assert_eq!(
                engine.eclipse_with(&b, alg).unwrap(),
                expected,
                "{alg:?} [{lo},{hi}]"
            );
        }
    }

    // Preference specifications route to the same results as their lowered
    // boxes.
    let pref = PreferenceSpec::RelaxedWeights {
        ratios: vec![1.0, 1.0],
        margin: 0.4,
    };
    let lowered = pref.to_ratio_box(3).unwrap();
    assert_eq!(
        engine.eclipse_with_preference(&pref).unwrap(),
        engine.eclipse(&lowered).unwrap()
    );

    // Categorical preferences with an unbounded band still work through Auto.
    let cat = PreferenceSpec::Categorical(vec![
        ImportanceLevel::VeryImportant,
        ImportanceLevel::Similar,
    ]);
    let got = engine.eclipse_with_preference(&cat).unwrap();
    assert!(!got.is_empty());
    let sky: std::collections::HashSet<usize> = engine.skyline().into_iter().collect();
    assert!(got.iter().all(|i| sky.contains(i)));

    // kNN / 1NN / relations round out the surface.
    let top10 = engine.knn(&[1.0, 1.0], 10).unwrap();
    assert_eq!(top10.len(), 10);
    assert!(top10.windows(2).all(|w| w[0].score <= w[1].score));
    let b = WeightRatioBox::uniform(3, 0.36, 2.75).unwrap();
    let report = engine.relations(&b).unwrap();
    assert!(report.eclipse_subset_of_skyline());
    assert!(report.nn_in_eclipse());
}

#[test]
fn eclipse_point_materialization_matches_indices() {
    let pts = SyntheticConfig::new(300, 2, Distribution::AntiCorrelated, 5).generate();
    let engine = EclipseEngine::new(pts.clone()).unwrap();
    let b = WeightRatioBox::uniform(2, 0.5, 2.0).unwrap();
    let idx = engine.eclipse(&b).unwrap();
    let mat = engine.eclipse_points(&b).unwrap();
    assert_eq!(idx.len(), mat.len());
    for (i, p) in idx.iter().zip(mat.iter()) {
        assert_eq!(&pts[*i], p);
    }
}

#[test]
fn survey_and_experiment_style_workload_complete_quickly() {
    // Smoke-test the Table V simulator and a miniature Figure 10 row through
    // the public APIs, as the experiments binary does.
    let outcome = run_survey(SurveyConfig::default());
    assert_eq!(outcome.total(), 61);

    let pts = SyntheticConfig::new(256, 3, Distribution::Correlated, 8).generate();
    let engine = EclipseEngine::new(pts).unwrap();
    let b = WeightRatioBox::uniform(3, 0.36, 2.75).unwrap();
    let base = engine.eclipse_with(&b, Algorithm::Baseline).unwrap();
    let quad = engine.eclipse_with(&b, Algorithm::IndexQuadtree).unwrap();
    assert_eq!(base, quad);
}
