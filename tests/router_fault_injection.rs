//! Fault-injection tests of the shard router, driven by the deterministic
//! frame-aware [`FaultProxy`]: a shard killed mid-workload fails over to a
//! re-warmed standby with byte-identical results; without a standby the
//! router degrades to typed partial results while the connection stays
//! usable; torn, corrupted, black-holed, and mid-batch-killed backend
//! connections are contained and transparently retried.

mod common;

use std::time::Duration;

use common::{wait_until, TempDir};
use eclipse_core::exec::ExecutionContext;
use eclipse_core::WeightRatioBox;
use eclipse_data::synthetic::{Distribution, SyntheticConfig};
use eclipse_persist::fnv1a;
use eclipse_router::fault::{FaultPlan, FaultProxy};
use eclipse_router::router::{Router, RouterConfig, RouterHandle};
use eclipse_serve::client::{Client, ClientError};
use eclipse_serve::protocol::{IndexKind, MutationKind};
use eclipse_serve::server::{Server, ServerHandle};

/// A dataset name that hash-places onto `slot` of a `members`-wide ring.
fn owned_name(slot: usize, members: usize) -> String {
    (0..)
        .map(|i| format!("ds{i}"))
        .find(|name| (fnv1a(name.as_bytes()) % members as u64) as usize == slot)
        .expect("some name hashes onto every slot")
}

fn probe_boxes(n: usize) -> Vec<WeightRatioBox> {
    (0..n)
        .map(|i| {
            let lo = 0.2 + 0.07 * i as f64;
            WeightRatioBox::uniform(3, lo, lo + 2.5).unwrap()
        })
        .collect()
}

fn spawn_router(
    backends: Vec<String>,
    standbys: Vec<String>,
    replicated: Vec<String>,
) -> RouterHandle {
    Router::bind(
        "127.0.0.1:0",
        RouterConfig {
            backends,
            standbys,
            replicated,
            io_timeout: Duration::from_millis(500),
            ..RouterConfig::default()
        },
    )
    .unwrap()
    .spawn()
    .unwrap()
}

#[test]
fn killed_shard_fails_over_to_rewarmed_standby_with_identical_results() {
    for threads in [1usize, 4] {
        let dir = TempDir::new(&format!("failover_{threads}"));
        let spawn_backend = || {
            let server =
                Server::bind("127.0.0.1:0", ExecutionContext::with_threads(threads)).unwrap();
            server.set_snapshot_dir(dir.path());
            server.spawn().unwrap()
        };
        let backend0 = spawn_backend();
        let backend1 = spawn_backend();
        let standby = spawn_backend();
        let proxy0 = FaultProxy::spawn(backend0.addr(), FaultPlan::default()).unwrap();
        let proxy1 = FaultProxy::spawn(backend1.addr(), FaultPlan::default()).unwrap();
        let router = spawn_router(
            vec![proxy0.addr().to_string(), proxy1.addr().to_string()],
            vec![standby.addr().to_string()],
            vec!["rep".to_string()],
        );

        let name0 = owned_name(0, 2);
        let name1 = owned_name(1, 2);
        let points0 = SyntheticConfig::new(400, 3, Distribution::Independent, 41).generate();
        let points1 = SyntheticConfig::new(400, 3, Distribution::AntiCorrelated, 42).generate();
        let rep = SyntheticConfig::new(500, 3, Distribution::Correlated, 43).generate();
        let boxes = probe_boxes(6);

        let mut client = Client::connect(router.addr()).unwrap();
        assert!(client.allow_partial(true).unwrap());
        for (name, points) in [(&name0, &points0), (&name1, &points1)] {
            client
                .load_dataset(name, points, IndexKind::Quadtree)
                .unwrap();
        }
        client
            .load_dataset("rep", &rep, IndexKind::Quadtree)
            .unwrap();
        for name in [name0.as_str(), name1.as_str(), "rep"] {
            assert!(client.save_index(name, IndexKind::Quadtree).unwrap() > 0);
        }
        let expected0 = client.query_batch(&name0, &boxes).unwrap();
        let expected1 = client.query_batch(&name1, &boxes).unwrap();
        let expected_rep = client.query_batch("rep", &boxes).unwrap();
        let expected_rep_counts = client.count_batch("rep", &boxes).unwrap();

        // Kill shard 0 mid-workload: a few queries in, the member behind
        // proxy0 goes dark without any goodbye.
        for _ in 0..3 {
            assert_eq!(client.query_batch("rep", &boxes).unwrap(), expected_rep);
        }
        proxy0.set_offline(true);

        // The replicated dataset never degrades: its chunks reroute to the
        // surviving member (retries included), results still identical.
        for _ in 0..5 {
            let rows = client.query_batch_degraded("rep", &boxes).unwrap();
            let rows: Vec<Vec<usize>> = rows.into_iter().map(|r| r.expect("rep row")).collect();
            assert_eq!(rows, expected_rep, "threads {threads}");
            let counts = client.count_batch_degraded("rep", &boxes).unwrap();
            let counts: Vec<usize> = counts.into_iter().map(|c| c.expect("rep count")).collect();
            assert_eq!(counts, expected_rep_counts, "threads {threads}");
        }

        // The health loop promotes the standby into slot 0 (snapshot
        // re-warm included) and the hashed dataset comes back with
        // byte-identical results.
        let recovered = wait_until(
            || {
                client
                    .query_batch_degraded(&name0, &boxes)
                    .is_ok_and(|rows| {
                        rows.into_iter().collect::<Option<Vec<Vec<usize>>>>()
                            == Some(expected0.clone())
                    })
            },
            Duration::from_secs(30),
        );
        assert!(recovered, "threads {threads}: failover never completed");

        let events = router.failovers();
        assert_eq!(events.len(), 1, "threads {threads}: {events:?}");
        assert_eq!(events[0].slot, 0);
        assert_eq!(events[0].from_addr, proxy0.addr().to_string());
        assert_eq!(events[0].to_addr, standby.addr().to_string());
        // The shared snapshot dir held all three datasets.
        assert_eq!(events[0].datasets_restored, 3);
        assert_eq!(events[0].snapshots_skipped, 0);

        // Full workload, byte-identical to the pre-kill answers.
        assert_eq!(client.query_batch(&name0, &boxes).unwrap(), expected0);
        assert_eq!(client.query_batch(&name1, &boxes).unwrap(), expected1);
        assert_eq!(client.query_batch("rep", &boxes).unwrap(), expected_rep);

        router.shutdown();
        proxy0.shutdown();
        proxy1.shutdown();
        for b in [backend0, backend1, standby] {
            b.shutdown();
        }
    }
}

#[test]
fn without_standby_reads_degrade_to_typed_partials_and_recover_in_place() {
    for threads in [1usize, 4] {
        let spawn_backend = || {
            Server::bind("127.0.0.1:0", ExecutionContext::with_threads(threads))
                .unwrap()
                .spawn()
                .unwrap()
        };
        let backend0 = spawn_backend();
        let backend1 = spawn_backend();
        let proxy0 = FaultProxy::spawn(backend0.addr(), FaultPlan::default()).unwrap();
        let proxy1 = FaultProxy::spawn(backend1.addr(), FaultPlan::default()).unwrap();
        let router = spawn_router(
            vec![proxy0.addr().to_string(), proxy1.addr().to_string()],
            Vec::new(),
            Vec::new(),
        );

        let name0 = owned_name(0, 2);
        let name1 = owned_name(1, 2);
        let points0 = SyntheticConfig::new(300, 3, Distribution::Independent, 51).generate();
        let points1 = SyntheticConfig::new(300, 3, Distribution::AntiCorrelated, 52).generate();
        let boxes = probe_boxes(5);

        let mut degraded = Client::connect(router.addr()).unwrap();
        assert!(degraded.allow_partial(true).unwrap());
        degraded
            .load_dataset(&name0, &points0, IndexKind::Quadtree)
            .unwrap();
        degraded
            .load_dataset(&name1, &points1, IndexKind::Quadtree)
            .unwrap();
        let expected0 = degraded.query_batch(&name0, &boxes).unwrap();
        let expected1 = degraded.query_batch(&name1, &boxes).unwrap();
        let mut strict = Client::connect(router.addr()).unwrap();

        proxy0.set_offline(true);

        // The opted-in connection gets typed per-box `None`s for the dead
        // shard's dataset — and stays fully usable.
        let went_partial = wait_until(
            || {
                degraded
                    .query_batch_degraded(&name0, &boxes)
                    .is_ok_and(|rows| rows.iter().all(Option::is_none))
            },
            Duration::from_secs(15),
        );
        assert!(went_partial, "threads {threads}: no typed partials");
        let counts = degraded.count_batch_degraded(&name0, &boxes).unwrap();
        assert!(counts.iter().all(Option::is_none));
        degraded.ping().unwrap();
        assert_eq!(degraded.query_batch(&name1, &boxes).unwrap(), expected1);

        // A connection that did not opt in gets a hard typed error naming
        // the opt-in — and stays usable too.
        match strict.query_batch(&name0, &boxes) {
            Err(ClientError::Server(m)) => {
                assert!(m.contains("AllowPartial"), "threads {threads}: {m}")
            }
            other => panic!("threads {threads}: expected a server error, got {other:?}"),
        }
        strict.ping().unwrap();
        assert_eq!(strict.query_batch(&name1, &boxes).unwrap(), expected1);

        // The shard comes back on the same address: the health loop walks
        // it through half-open probation and reads complete again.
        proxy0.set_offline(false);
        let recovered = wait_until(
            || {
                degraded
                    .query_batch_degraded(&name0, &boxes)
                    .is_ok_and(|rows| {
                        rows.into_iter().collect::<Option<Vec<Vec<usize>>>>()
                            == Some(expected0.clone())
                    })
            },
            Duration::from_secs(15),
        );
        assert!(recovered, "threads {threads}: no in-place recovery");
        let events = router.failovers();
        assert!(
            events
                .iter()
                .any(|e| e.slot == 0 && e.from_addr == e.to_addr),
            "threads {threads}: in-place recovery not recorded: {events:?}"
        );

        router.shutdown();
        proxy0.shutdown();
        proxy1.shutdown();
        backend0.shutdown();
        backend1.shutdown();
    }
}

/// One backend behind a misbehaving proxy; the dataset is loaded directly
/// (bypassing the proxy) so the planned fault ordinals land on probe
/// traffic only.  Returns everything the fault tests share.
fn solo_setup(
    plan: FaultPlan,
) -> (
    ServerHandle,
    FaultProxy,
    RouterHandle,
    Vec<WeightRatioBox>,
    Vec<Vec<usize>>,
) {
    let backend = Server::bind("127.0.0.1:0", ExecutionContext::default())
        .unwrap()
        .spawn()
        .unwrap();
    let points = SyntheticConfig::new(400, 3, Distribution::Independent, 61).generate();
    let boxes = probe_boxes(4);
    let mut direct = Client::connect(backend.addr()).unwrap();
    direct
        .load_dataset("solo", &points, IndexKind::Quadtree)
        .unwrap();
    let expected = direct.query_batch("solo", &boxes).unwrap();
    let proxy = FaultProxy::spawn(backend.addr(), plan).unwrap();
    let router = spawn_router(vec![proxy.addr().to_string()], Vec::new(), Vec::new());
    (backend, proxy, router, boxes, expected)
}

#[test]
fn mid_batch_connection_kills_are_retried_transparently() {
    // Every router→backend connection dies when its 5th request frame
    // arrives (Hello + three probes in), the in-flight probe unanswered.
    let (backend, proxy, router, boxes, expected) = solo_setup(FaultPlan {
        kill_at_request: Some(5),
        ..FaultPlan::default()
    });
    let mut client = Client::connect(router.addr()).unwrap();
    for round in 0..10 {
        assert_eq!(
            client.query_batch("solo", &boxes).unwrap(),
            expected,
            "round {round}"
        );
    }
    router.shutdown();
    proxy.shutdown();
    backend.shutdown();
}

#[test]
fn transport_failure_mid_insert_surfaces_typed_error_and_never_double_applies() {
    // Every router→backend connection dies when its 3rd request frame
    // arrives (Hello + one probe in) — which this test arranges to be an
    // `Insert`.  Mutations are excluded from the idempotent-only retry
    // allowlist, so the router must surface a typed error instead of
    // silently replaying a request that may (or may not) have executed
    // server-side.
    let (backend, proxy, router, boxes, expected) = solo_setup(FaultPlan {
        kill_at_request: Some(3),
        ..FaultPlan::default()
    });
    let mut client = Client::connect(router.addr()).unwrap();

    // Connection #1: Hello (frame 1) plus one healthy probe (frame 2).
    assert_eq!(
        client.query_batch("solo", &boxes[..1]).unwrap(),
        expected[..1].to_vec()
    );

    // Frame 3 is the Insert: the connection dies with the frame
    // unforwarded.  A read here would be retried transparently; the
    // mutation must fail loudly instead.
    match client.insert("solo", &[2.0, 2.0, 2.0]) {
        Err(ClientError::Server(m)) => assert!(m.contains("unavailable"), "{m}"),
        other => panic!("expected a typed server error, got {other:?}"),
    }

    // Direct look at the backend (bypassing the proxy): the killed insert
    // was never applied — and never replayed behind our back.
    let mut direct = Client::connect(backend.addr()).unwrap();
    let solo_stats = |direct: &mut Client| {
        let report = direct.stats().unwrap();
        let ds = report
            .datasets
            .iter()
            .find(|d| d.name == "solo")
            .expect("solo dataset")
            .clone();
        (ds.epoch, ds.points)
    };
    assert_eq!(
        solo_stats(&mut direct),
        (0, 400),
        "a killed insert must not apply"
    );

    // The client connection survives the typed error, and the same insert
    // re-issued deliberately lands as frame 2 of a fresh backend
    // connection: applied exactly once.
    let ack = client.insert("solo", &[2.0, 2.0, 2.0]).unwrap();
    assert_eq!(ack.kind, MutationKind::InsertedDominated);
    assert_eq!((ack.epoch, ack.len), (1, 401));
    assert_eq!(
        solo_stats(&mut direct),
        (1, 401),
        "a re-issued insert applies exactly once"
    );

    // Reads still retry transparently across further kills, and the
    // dominated insert left every probe answer unchanged.
    assert_eq!(
        client.query_batch("solo", &boxes[..1]).unwrap(),
        expected[..1].to_vec()
    );

    router.shutdown();
    proxy.shutdown();
    backend.shutdown();
}

#[test]
fn garbage_response_frames_are_contained_and_retried() {
    // The 3rd response frame of every router→backend connection decodes to
    // garbage: the router must discard that connection and retry, never
    // forwarding garbage to the client.
    let (backend, proxy, router, boxes, expected) = solo_setup(FaultPlan {
        garbage_response_at: Some(3),
        ..FaultPlan::default()
    });
    let mut client = Client::connect(router.addr()).unwrap();
    for round in 0..6 {
        assert_eq!(
            client.query_batch("solo", &boxes).unwrap(),
            expected,
            "round {round}"
        );
    }
    router.shutdown();
    proxy.shutdown();
    backend.shutdown();
}

#[test]
fn mid_frame_resets_are_contained_and_retried() {
    // The 3rd response frame is torn in half and the connection reset: the
    // partial frame must not desynchronize anything client-visible.
    let (backend, proxy, router, boxes, expected) = solo_setup(FaultPlan {
        reset_mid_frame_at: Some(3),
        ..FaultPlan::default()
    });
    let mut client = Client::connect(router.addr()).unwrap();
    for round in 0..6 {
        assert_eq!(
            client.query_batch("solo", &boxes).unwrap(),
            expected,
            "round {round}"
        );
    }
    router.shutdown();
    proxy.shutdown();
    backend.shutdown();
}

#[test]
fn black_holed_responses_hit_the_io_timeout_and_retry() {
    // After two responses each connection goes silent (requests still
    // reach the backend): the router's socket timeout must fire and the
    // probe must be retried on a fresh connection.
    let (backend, proxy, router, boxes, expected) = solo_setup(FaultPlan {
        black_hole_after: Some(2),
        ..FaultPlan::default()
    });
    let mut client = Client::connect(router.addr()).unwrap();
    for round in 0..5 {
        assert_eq!(
            client.query_batch("solo", &boxes).unwrap(),
            expected,
            "round {round}"
        );
    }
    router.shutdown();
    proxy.shutdown();
    backend.shutdown();
}

#[test]
fn corrupt_snapshots_are_skipped_during_failover_rewarm() {
    let dir = TempDir::new("corrupt_rewarm");
    let spawn_backend = || {
        let server = Server::bind("127.0.0.1:0", ExecutionContext::default()).unwrap();
        server.set_snapshot_dir(dir.path());
        server.spawn().unwrap()
    };
    let backend = spawn_backend();
    let standby = spawn_backend();
    let proxy = FaultProxy::spawn(backend.addr(), FaultPlan::default()).unwrap();
    let router = spawn_router(
        vec![proxy.addr().to_string()],
        vec![standby.addr().to_string()],
        Vec::new(),
    );

    let points = SyntheticConfig::new(300, 3, Distribution::Independent, 71).generate();
    let boxes = probe_boxes(5);
    let mut client = Client::connect(router.addr()).unwrap();
    client.allow_partial(true).unwrap();
    client
        .load_dataset("solo", &points, IndexKind::Quadtree)
        .unwrap();
    client.save_index("solo", IndexKind::Quadtree).unwrap();
    let expected = client.query_batch("solo", &boxes).unwrap();

    // A corrupt snapshot lands in the shared dir before the failover.
    std::fs::write(
        dir.path().join("junk.eclsnap"),
        b"definitely not a snapshot",
    )
    .unwrap();

    proxy.set_offline(true);
    let recovered = wait_until(
        || {
            client
                .query_batch_degraded("solo", &boxes)
                .is_ok_and(|rows| {
                    rows.into_iter().collect::<Option<Vec<Vec<usize>>>>() == Some(expected.clone())
                })
        },
        Duration::from_secs(30),
    );
    assert!(recovered, "failover never completed");

    // The re-warm restored the good snapshot and skipped the corrupt one
    // instead of aborting the promotion.
    let events = router.failovers();
    assert_eq!(events.len(), 1, "{events:?}");
    assert_eq!(events[0].datasets_restored, 1);
    assert_eq!(events[0].snapshots_skipped, 1);

    router.shutdown();
    proxy.shutdown();
    backend.shutdown();
    standby.shutdown();
}

#[test]
fn killing_one_replica_mid_insert_is_typed_and_leaves_survivors_identical() {
    // Regression for the replicated-mutation fan: with one of three
    // replicas dead, an `Insert` through the router must still reach every
    // *surviving* member (the fan used to abort on the first failure,
    // leaving replicas behind the failed slot unmutated), and the caller
    // must get a typed error naming the partial application instead of a
    // silent first-member ack.
    let backends: Vec<ServerHandle> = (0..3)
        .map(|_| {
            Server::bind("127.0.0.1:0", ExecutionContext::with_threads(2))
                .unwrap()
                .spawn()
                .unwrap()
        })
        .collect();
    // The router's connection to replica 1 dies exactly when its 4th frame
    // arrives, unforwarded — which this test arranges to be the second
    // `Insert` (Hello, LoadDataset, and the first Insert come before it).
    let proxy = FaultProxy::spawn(
        backends[1].addr(),
        FaultPlan {
            kill_at_request: Some(4),
            ..FaultPlan::default()
        },
    )
    .unwrap();
    let router = spawn_router(
        vec![
            backends[0].addr().to_string(),
            proxy.addr().to_string(),
            backends[2].addr().to_string(),
        ],
        Vec::new(),
        vec!["rep".to_string()],
    );

    let points = SyntheticConfig::new(300, 3, Distribution::Independent, 81).generate();
    let boxes = probe_boxes(5);
    let mut client = Client::connect(router.addr()).unwrap();
    client
        .load_dataset("rep", &points, IndexKind::Quadtree)
        .unwrap();
    let healthy = [0.3, 0.3, 0.3];
    assert_eq!(client.insert("rep", &healthy).unwrap().epoch, 1);

    // The killed mutation: the fan must report exactly which share of the
    // membership applied it.
    let killed = [0.6, 0.2, 0.4];
    match client.insert("rep", &killed) {
        Err(ClientError::Server(m)) => {
            assert!(m.contains("applied to 2/3"), "{m}");
            assert!(m.contains("shard 1"), "{m}");
        }
        other => panic!("expected a partial-application error, got {other:?}"),
    }

    // Both survivors hold both inserts and answer byte-identically to a
    // reference engine that applied the same mutations.
    let engine = eclipse_core::EclipseEngine::new(points).unwrap();
    engine
        .insert(eclipse_core::Point::new(healthy.to_vec()))
        .unwrap();
    engine
        .insert(eclipse_core::Point::new(killed.to_vec()))
        .unwrap();
    let expected: Vec<Vec<usize>> = boxes.iter().map(|b| engine.eclipse(b).unwrap()).collect();
    for slot in [0usize, 2] {
        let mut direct = Client::connect(backends[slot].addr()).unwrap();
        let report = direct.stats().unwrap();
        assert_eq!(report.datasets[0].epoch, 2, "survivor {slot}");
        assert_eq!(report.datasets[0].points, 302, "survivor {slot}");
        assert_eq!(
            direct.query_batch("rep", &boxes).unwrap(),
            expected,
            "survivor {slot} diverged"
        );
    }
    // The dead replica (reached directly, not through the proxy) saw only
    // the pre-kill mutation.
    let mut direct = Client::connect(backends[1].addr()).unwrap();
    assert_eq!(direct.stats().unwrap().datasets[0].epoch, 1);

    // The router connection survives the typed error.
    client.ping().unwrap();

    router.shutdown();
    proxy.shutdown();
    for b in backends {
        b.shutdown();
    }
}
