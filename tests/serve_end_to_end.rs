//! End-to-end serving test: a real `eclipse-serve` server on an ephemeral
//! port must answer `QueryBatch` with exactly the results of the in-process
//! [`EclipseEngine::eclipse_query_batch`] path, and `CountBatch` with the
//! result lengths — at one and at four query threads (the CI thread-parity
//! matrix additionally re-runs this whole file under `ECLIPSE_THREADS=1`
//! and `4`).

use eclipse_core::exec::{ExecutionContext, QueryOptions};
use eclipse_core::index::IntersectionIndexKind;
use eclipse_core::{EclipseEngine, WeightRatioBox};
use eclipse_data::synthetic::{Distribution, SyntheticConfig};
use eclipse_serve::client::{Client, ClientError};
use eclipse_serve::protocol::IndexKind;
use eclipse_serve::server::Server;

fn probe_boxes() -> Vec<WeightRatioBox> {
    let mut boxes = Vec::new();
    for (lo, hi) in [
        (0.18, 5.67),
        (0.36, 2.75),
        (0.58, 1.73),
        (0.84, 1.19),
        (1.0, 1.0),
        // Escapes the default indexed region: exercises the exact fallback
        // through the server too.
        (0.5, 20.0),
    ] {
        boxes.push(WeightRatioBox::uniform(3, lo, hi).unwrap());
    }
    boxes
}

#[test]
fn served_batches_match_in_process_batches_at_1_and_4_threads() {
    let points = SyntheticConfig::new(600, 3, Distribution::Independent, 2021).generate();
    let boxes = probe_boxes();
    for threads in [1usize, 4] {
        for warm in [IndexKind::Quadtree, IndexKind::CuttingTree] {
            let ctx = ExecutionContext::with_threads(threads);
            // The in-process reference: same pool width, same warmed index
            // kind, same batched entry point.
            let engine = EclipseEngine::new(points.clone())
                .unwrap()
                .with_execution_context(ctx.clone());
            engine
                .build_index(IntersectionIndexKind::from(warm))
                .unwrap();
            let expected = engine
                .eclipse_query_batch(&boxes, &QueryOptions::default())
                .unwrap();
            let expected_counts: Vec<usize> = expected.iter().map(Vec::len).collect();

            let handle = Server::bind("127.0.0.1:0", ctx).unwrap().spawn().unwrap();
            let mut client = Client::connect(handle.addr()).unwrap();
            let summary = client.load_dataset("inde", &points, warm).unwrap();
            assert_eq!(summary.points, 600);
            assert_eq!(summary.dim, 3);
            assert_eq!(summary.skyline_len as usize, engine.skyline().len());

            assert_eq!(
                client.query_batch("inde", &boxes).unwrap(),
                expected,
                "threads {threads}, warm {warm:?}"
            );
            assert_eq!(
                client.count_batch("inde", &boxes).unwrap(),
                expected_counts,
                "threads {threads}, warm {warm:?}"
            );
            handle.shutdown();
        }
    }
}

#[test]
fn empty_and_single_probe_batches_over_the_wire() {
    let points = SyntheticConfig::new(300, 3, Distribution::Correlated, 7).generate();
    let handle = Server::bind("127.0.0.1:0", ExecutionContext::with_threads(2))
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .load_dataset("corr", &points, IndexKind::Quadtree)
        .unwrap();
    assert_eq!(
        client.query_batch("corr", &[]).unwrap(),
        Vec::<Vec<usize>>::new()
    );
    assert_eq!(
        client.count_batch("corr", &[]).unwrap(),
        Vec::<usize>::new()
    );

    let engine = EclipseEngine::new(points).unwrap();
    let one = [WeightRatioBox::uniform(3, 0.36, 2.75).unwrap()];
    let expected = engine.eclipse(&one[0]).unwrap();
    assert_eq!(
        client.query_batch("corr", &one).unwrap(),
        vec![expected.clone()]
    );
    assert_eq!(
        client.count_batch("corr", &one).unwrap(),
        vec![expected.len()]
    );
    handle.shutdown();
}

#[test]
fn skyline_instantiation_is_served_through_the_auto_fallback() {
    // Unbounded boxes cannot go through the index; the engine's Auto path
    // answers them per probe, and the wire format carries the infinities.
    let points = SyntheticConfig::new(200, 3, Distribution::Independent, 11).generate();
    let handle = Server::bind("127.0.0.1:0", ExecutionContext::with_threads(2))
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .load_dataset("inde", &points, IndexKind::Quadtree)
        .unwrap();
    let engine = EclipseEngine::new(points).unwrap();
    let sky = WeightRatioBox::skyline(3).unwrap();
    let bounded = WeightRatioBox::uniform(3, 0.36, 2.75).unwrap();
    let got = client
        .query_batch("inde", &[sky.clone(), bounded.clone()])
        .unwrap();
    assert_eq!(got[0], engine.eclipse(&sky).unwrap());
    assert_eq!(got[1], engine.eclipse(&bounded).unwrap());
    handle.shutdown();
}

#[test]
fn protocol_errors_leave_the_connection_usable() {
    let points = SyntheticConfig::new(150, 3, Distribution::Independent, 3).generate();
    let handle = Server::bind("127.0.0.1:0", ExecutionContext::serial())
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.ping().unwrap();

    // Unknown dataset.
    let b = [WeightRatioBox::uniform(3, 0.5, 1.5).unwrap()];
    match client.query_batch("ghost", &b) {
        Err(ClientError::Server(m)) => assert!(m.contains("unknown dataset"), "{m}"),
        other => panic!("expected a server error, got {other:?}"),
    }

    // Wrong dimensionality after a successful load.
    client
        .load_dataset("d3", &points, IndexKind::CuttingTree)
        .unwrap();
    let wrong = [WeightRatioBox::uniform(4, 0.5, 1.5).unwrap()];
    assert!(matches!(
        client.count_batch("d3", &wrong),
        Err(ClientError::Server(_))
    ));

    // The same connection still answers correctly afterwards.
    let engine = EclipseEngine::new(points).unwrap();
    assert_eq!(
        client.query_batch("d3", &b).unwrap(),
        vec![engine.eclipse(&b[0]).unwrap()]
    );

    // Stats reflect the errors and the successful traffic.
    let report = client.stats().unwrap();
    assert_eq!(report.errors, 2);
    assert_eq!(report.query_batches, 1);
    assert_eq!(report.count_batches, 0);
    assert_eq!(report.datasets.len(), 1);
    assert!(report.datasets[0].cutting_built);
    assert!(!report.datasets[0].quad_built);
    handle.shutdown();
}

#[test]
fn mixed_dimensionalities_are_rejected_before_sending() {
    // The flat wire format would silently regroup the coordinates of a
    // mixed-dimensionality slice into different points; the client must
    // refuse to send it at all.
    use eclipse_core::Point;
    let handle = Server::bind("127.0.0.1:0", ExecutionContext::serial())
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let mixed = vec![
        Point::new(vec![1.0, 2.0]),
        Point::new(vec![1.0, 2.0, 3.0, 4.0]),
    ];
    match client.load_dataset("mixed", &mixed, IndexKind::Quadtree) {
        Err(ClientError::InvalidRequest(m)) => assert!(m.contains("mixed"), "{m}"),
        other => panic!("expected a client-side rejection, got {other:?}"),
    }
    // Nothing was registered and the connection is still usable.
    client.ping().unwrap();
    assert!(client.stats().unwrap().datasets.is_empty());
    handle.shutdown();
}

#[test]
fn build_index_over_the_wire_reports_backend_shape() {
    let points = SyntheticConfig::new(250, 3, Distribution::Independent, 5).generate();
    let handle = Server::bind("127.0.0.1:0", ExecutionContext::serial())
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .load_dataset("inde", &points, IndexKind::Quadtree)
        .unwrap();
    let summary = client.build_index("inde", IndexKind::CuttingTree).unwrap();
    assert_eq!(summary.kind, IndexKind::CuttingTree);
    assert!(summary.nodes >= 1);
    let engine = EclipseEngine::new(points).unwrap();
    assert_eq!(summary.skyline_len as usize, engine.skyline().len());
    let report = client.stats().unwrap();
    assert!(report.datasets[0].quad_built && report.datasets[0].cutting_built);
    assert!(report.datasets[0].root_crossings <= report.datasets[0].intersections);
    handle.shutdown();
}

#[test]
fn two_datasets_are_served_independently() {
    let inde = SyntheticConfig::new(200, 3, Distribution::Independent, 13).generate();
    let anti = SyntheticConfig::new(200, 2, Distribution::AntiCorrelated, 17).generate();
    let handle = Server::bind("127.0.0.1:0", ExecutionContext::with_threads(2))
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .load_dataset("inde", &inde, IndexKind::Quadtree)
        .unwrap();
    client
        .load_dataset("anti", &anti, IndexKind::CuttingTree)
        .unwrap();

    let b3 = [WeightRatioBox::uniform(3, 0.36, 2.75).unwrap()];
    let b2 = [WeightRatioBox::uniform(2, 0.25, 2.0).unwrap()];
    let e_inde = EclipseEngine::new(inde).unwrap();
    let e_anti = EclipseEngine::new(anti).unwrap();
    assert_eq!(
        client.query_batch("inde", &b3).unwrap(),
        vec![e_inde.eclipse(&b3[0]).unwrap()]
    );
    assert_eq!(
        client.query_batch("anti", &b2).unwrap(),
        vec![e_anti.eclipse(&b2[0]).unwrap()]
    );
    let report = client.stats().unwrap();
    assert_eq!(report.datasets.len(), 2);
    // Sorted by name.
    assert_eq!(report.datasets[0].name, "anti");
    assert_eq!(report.datasets[1].name, "inde");
    handle.shutdown();
}
