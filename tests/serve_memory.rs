//! Memory-governance suite: a server with a byte budget keeps a working set
//! larger than the budget available by evicting least-recently-used datasets
//! to their snapshots and transparently restoring them on the next touch —
//! with wire answers byte-identical to an unbounded server throughout, the
//! accounted total bounded by budget + one dataset, mutation epochs
//! preserved across eviction, and the typed `DatasetUnavailable` response
//! (connection stays usable) when a restore is impossible.

mod common;

use common::TempDir;
use eclipse_core::exec::ExecutionContext;
use eclipse_core::index::IntersectionIndexKind;
use eclipse_core::{EclipseEngine, Point, WeightRatioBox};
use eclipse_data::synthetic::{Distribution, SyntheticConfig};
use eclipse_serve::client::{Client, ClientError};
use eclipse_serve::protocol::IndexKind;
use eclipse_serve::server::{Server, ServerConfig};

fn dataset(n: usize, seed: u64) -> Vec<Point> {
    SyntheticConfig::new(n, 3, Distribution::Independent, seed).generate()
}

fn probe_boxes() -> Vec<WeightRatioBox> {
    [(0.18, 5.67), (0.36, 2.75), (0.84, 1.19), (1.0, 1.0)]
        .into_iter()
        .map(|(lo, hi)| WeightRatioBox::uniform(3, lo, hi).unwrap())
        .collect()
}

/// The accounted bytes of one fully-warm dataset as the server holds it
/// (points + quadtree index + cached skyline) — the unit budgets below are
/// expressed in.
fn warm_bytes(points: &[Point]) -> u64 {
    let engine = EclipseEngine::new(points.to_vec())
        .unwrap()
        .with_execution_context(ExecutionContext::serial());
    engine.build_index(IntersectionIndexKind::Quadtree).unwrap();
    engine.skyline();
    engine.heap_bytes() as u64
}

fn budgeted_server(dir: &TempDir, budget: u64, threads: usize) -> Server {
    let server = Server::bind_with_config(
        "127.0.0.1:0",
        ExecutionContext::with_threads(threads),
        ServerConfig {
            max_memory_bytes: Some(budget),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    server.set_snapshot_dir(dir.path());
    server
}

#[test]
fn cycling_twice_the_budget_stays_byte_identical_at_1_and_4_threads() {
    let datasets: Vec<Vec<Point>> = (0..4).map(|i| dataset(500, 100 + i)).collect();
    let names = ["ds0", "ds1", "ds2", "ds3"];
    let boxes = probe_boxes();
    let per_dataset: Vec<u64> = datasets.iter().map(|pts| warm_bytes(pts)).collect();
    let working_set: u64 = per_dataset.iter().sum();
    let largest = *per_dataset.iter().max().unwrap();
    let budget = working_set / 2;

    // Ground truth from an unbounded server.
    let reference = Server::bind("127.0.0.1:0", ExecutionContext::with_threads(1)).unwrap();
    for (name, pts) in names.iter().zip(&datasets) {
        reference
            .register_dataset(name, pts.clone(), IndexKind::Quadtree)
            .unwrap();
    }
    let ref_handle = reference.spawn().unwrap();
    let mut ref_client = Client::connect(ref_handle.addr()).unwrap();
    let expected: Vec<_> = names
        .iter()
        .map(|name| ref_client.query_batch(name, &boxes).unwrap())
        .collect();
    ref_handle.shutdown();

    for threads in [1usize, 4] {
        let dir = TempDir::new(&format!("memory_cycle_{threads}"));
        let server = budgeted_server(&dir, budget, threads);
        for (name, pts) in names.iter().zip(&datasets) {
            server
                .register_dataset(name, pts.clone(), IndexKind::Quadtree)
                .unwrap();
        }
        let handle = server.spawn().unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();

        for pass in 0..3 {
            for (i, name) in names.iter().enumerate() {
                assert_eq!(
                    client.query_batch(name, &boxes).unwrap(),
                    expected[i],
                    "pass {pass}, {name}, threads {threads}"
                );
                let stats = client.stats().unwrap();
                assert_eq!(stats.memory_budget, budget);
                assert!(
                    stats.total_bytes <= budget + largest,
                    "pass {pass}, threads {threads}: accounted {} over budget {budget} + \
                     one dataset {largest}",
                    stats.total_bytes
                );
            }
        }
        let stats = client.stats().unwrap();
        assert!(
            stats.evictions > 0 && stats.reloads > 0,
            "threads {threads}: cycling 2x the budget must evict and reload \
             (evictions {}, reloads {})",
            stats.evictions,
            stats.reloads
        );
        // Residency is part of the report: the working set cannot all fit.
        assert_eq!(stats.datasets.len(), names.len());
        assert!(stats.datasets.iter().any(|d| !d.resident));
        for row in &stats.datasets {
            if row.resident {
                assert!(row.bytes > 0, "resident {} reports zero bytes", row.name);
            } else {
                assert_eq!(row.bytes, 0, "evicted {} reports bytes", row.name);
            }
        }
        handle.shutdown();
    }
}

#[test]
fn lru_evicts_the_coldest_dataset() {
    let datasets: Vec<Vec<Point>> = (0..3).map(|i| dataset(400, 200 + i)).collect();
    let per_dataset: Vec<u64> = datasets.iter().map(|pts| warm_bytes(pts)).collect();
    // Any two datasets fit, all three do not.
    let budget = per_dataset.iter().sum::<u64>() - per_dataset.iter().min().unwrap() / 2;

    let dir = TempDir::new("memory_lru");
    let server = budgeted_server(&dir, budget, 2);
    server
        .register_dataset("ds0", datasets[0].clone(), IndexKind::Quadtree)
        .unwrap();
    server
        .register_dataset("ds1", datasets[1].clone(), IndexKind::Quadtree)
        .unwrap();
    let handle = server.spawn().unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    // Touch ds0 so ds1 is the coldest, then overflow the budget with ds2:
    // the victim must be ds1, not the more recently used ds0.
    client.query_batch("ds0", &probe_boxes()).unwrap();
    client
        .load_dataset("ds2", &datasets[2], IndexKind::Quadtree)
        .unwrap();
    let stats = client.stats().unwrap();
    let resident = |name: &str| {
        stats
            .datasets
            .iter()
            .find(|d| d.name == name)
            .unwrap()
            .resident
    };
    assert!(!resident("ds1"), "the coldest dataset must be the victim");
    assert!(resident("ds0"), "a recently-touched dataset must survive");
    assert!(resident("ds2"), "the dataset being registered is protected");
    handle.shutdown();
}

#[test]
fn eviction_preserves_mutations_and_epochs() {
    let pts = dataset(400, 301);
    let other = dataset(400, 302);
    // Index sizes vary a lot with the seed (intersections are quadratic in
    // the skyline), so size the budget from both: one dataset fits, two
    // never do.
    let (b0, b1) = (warm_bytes(&pts), warm_bytes(&other));
    let budget = b0.max(b1) + b0.min(b1) / 2;
    let boxes = probe_boxes();

    let dir = TempDir::new("memory_epoch");
    let server = budgeted_server(&dir, budget, 2);
    server
        .register_dataset("ds0", pts.clone(), IndexKind::Quadtree)
        .unwrap();
    let handle = server.spawn().unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    // Mutate to epoch 1, then push ds0 out of memory with a second dataset.
    let inserted = [0.5, 0.5, 0.5];
    let ack = client.insert("ds0", &inserted).unwrap();
    assert_eq!(ack.epoch, 1);
    client
        .load_dataset("ds1", &other, IndexKind::Quadtree)
        .unwrap();
    let stats = client.stats().unwrap();
    let ds0 = stats.datasets.iter().find(|d| d.name == "ds0").unwrap();
    assert!(!ds0.resident, "ds0 must be evicted to fit ds1");
    assert_eq!(ds0.epoch, 1, "eviction must keep the post-mutation epoch");
    assert_eq!(ds0.points, 401);

    // The reload must include the acknowledged insert, byte for byte.
    let engine = EclipseEngine::new(pts).unwrap();
    engine.insert(Point::new(inserted.to_vec())).unwrap();
    let expected: Vec<_> = boxes.iter().map(|b| engine.eclipse(b).unwrap()).collect();
    assert_eq!(client.query_batch("ds0", &boxes).unwrap(), expected);
    let stats = client.stats().unwrap();
    let ds0 = stats.datasets.iter().find(|d| d.name == "ds0").unwrap();
    assert!(ds0.resident);
    assert_eq!(ds0.epoch, 1);
    assert!(stats.reloads >= 1);

    // Mutations keep counting from where the snapshot left off.
    let ack = client.insert("ds0", &[0.25, 0.25, 0.25]).unwrap();
    assert_eq!(ack.epoch, 2);
    handle.shutdown();
}

#[test]
fn impossible_restores_are_typed_and_leave_the_connection_usable() {
    let datasets: Vec<Vec<Point>> = (0..2).map(|i| dataset(400, 400 + i)).collect();
    let (b0, b1) = (warm_bytes(&datasets[0]), warm_bytes(&datasets[1]));
    // One dataset fits, two never do — registering ds1 must evict ds0.
    let budget = b0.max(b1) + b0.min(b1) / 2;
    let boxes = probe_boxes();

    let dir = TempDir::new("memory_unavailable");
    let server = budgeted_server(&dir, budget, 2);
    server
        .register_dataset("ds0", datasets[0].clone(), IndexKind::Quadtree)
        .unwrap();
    server
        .register_dataset("ds1", datasets[1].clone(), IndexKind::Quadtree)
        .unwrap();
    let handle = server.spawn().unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let stats = client.stats().unwrap();
    let ds0 = stats.datasets.iter().find(|d| d.name == "ds0").unwrap();
    assert!(!ds0.resident, "ds0 must have been evicted for ds1");

    // Destroy the snapshots behind the server's back: the next touch cannot
    // restore and must answer the typed response, not a wedged connection.
    for entry in std::fs::read_dir(dir.path()).unwrap() {
        std::fs::remove_file(entry.unwrap().path()).unwrap();
    }
    match client.query_batch("ds0", &boxes) {
        Err(ClientError::DatasetUnavailable { name, reason }) => {
            assert_eq!(name, "ds0");
            assert!(!reason.is_empty());
        }
        other => panic!("expected DatasetUnavailable, got {other:?}"),
    }

    // Same connection: liveness, the resident dataset, and stats all work,
    // and the evicted dataset is still reported rather than dropped.
    client.ping().unwrap();
    let engine = EclipseEngine::new(datasets[1].clone()).unwrap();
    let expected: Vec<_> = boxes.iter().map(|b| engine.eclipse(b).unwrap()).collect();
    assert_eq!(client.query_batch("ds1", &boxes).unwrap(), expected);
    let stats = client.stats().unwrap();
    assert!(stats
        .datasets
        .iter()
        .any(|d| d.name == "ds0" && !d.resident));
    handle.shutdown();
}
