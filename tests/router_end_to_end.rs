//! End-to-end tests of the healthy-path shard router: hash placement,
//! replicated probe-space partitioning, merged stats/snapshot surfaces,
//! and both protocol generations on the client side — always asserting
//! the routed results are byte-identical to a single-process run.

mod common;

use common::TempDir;
use eclipse_core::exec::ExecutionContext;
use eclipse_core::WeightRatioBox;
use eclipse_data::synthetic::{Distribution, SyntheticConfig};
use eclipse_persist::fnv1a;
use eclipse_router::router::{Router, RouterConfig};
use eclipse_serve::client::{Client, PipelinedClient};
use eclipse_serve::protocol::{IndexKind, Request, Response};
use eclipse_serve::server::{Server, ServerHandle};

/// A dataset name that hash-places onto `slot` of a `members`-wide ring.
fn owned_name(slot: usize, members: usize) -> String {
    (0..)
        .map(|i| format!("ds{i}"))
        .find(|name| (fnv1a(name.as_bytes()) % members as u64) as usize == slot)
        .expect("some name hashes onto every slot")
}

fn probe_boxes(n: usize) -> Vec<WeightRatioBox> {
    (0..n)
        .map(|i| {
            let lo = 0.2 + 0.07 * i as f64;
            WeightRatioBox::uniform(3, lo, lo + 2.5).unwrap()
        })
        .collect()
}

fn spawn_backends(n: usize, threads: usize) -> Vec<ServerHandle> {
    (0..n)
        .map(|_| {
            Server::bind("127.0.0.1:0", ExecutionContext::with_threads(threads))
                .unwrap()
                .spawn()
                .unwrap()
        })
        .collect()
}

fn router_over(backends: &[ServerHandle], config: RouterConfig) -> eclipse_router::RouterHandle {
    let config = RouterConfig {
        backends: backends.iter().map(|b| b.addr().to_string()).collect(),
        ..config
    };
    Router::bind("127.0.0.1:0", config)
        .unwrap()
        .spawn()
        .unwrap()
}

#[test]
fn hashed_placement_shards_datasets_and_merges_identically_to_one_server() {
    let backends = spawn_backends(2, 2);
    let router = router_over(&backends, RouterConfig::default());

    let name0 = owned_name(0, 2);
    let name1 = owned_name(1, 2);
    let points0 = SyntheticConfig::new(400, 3, Distribution::Independent, 11).generate();
    let points1 = SyntheticConfig::new(400, 3, Distribution::AntiCorrelated, 12).generate();
    let boxes = probe_boxes(7);

    // The unsharded reference: one process holding both datasets.
    let reference = Server::bind("127.0.0.1:0", ExecutionContext::with_threads(2))
        .unwrap()
        .spawn()
        .unwrap();
    let mut ref_client = Client::connect(reference.addr()).unwrap();
    ref_client
        .load_dataset(&name0, &points0, IndexKind::Quadtree)
        .unwrap();
    ref_client
        .load_dataset(&name1, &points1, IndexKind::Quadtree)
        .unwrap();

    let mut client = Client::connect(router.addr()).unwrap();
    client.ping().unwrap();
    client
        .load_dataset(&name0, &points0, IndexKind::Quadtree)
        .unwrap();
    client
        .load_dataset(&name1, &points1, IndexKind::Quadtree)
        .unwrap();

    // Placement is real: each backend holds exactly its own dataset.
    for (i, expected_name) in [(0, &name0), (1, &name1)] {
        let mut direct = Client::connect(backends[i].addr()).unwrap();
        let report = direct.stats().unwrap();
        let held: Vec<&str> = report.datasets.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(held, vec![expected_name.as_str()], "backend {i}");
    }

    // Routed results are byte-identical to the single-process run.
    for name in [&name0, &name1] {
        assert_eq!(
            client.query_batch(name, &boxes).unwrap(),
            ref_client.query_batch(name, &boxes).unwrap(),
            "{name}"
        );
        assert_eq!(
            client.count_batch(name, &boxes).unwrap(),
            ref_client.count_batch(name, &boxes).unwrap(),
            "{name}"
        );
    }

    // Merged stats see both datasets and the summed probe counters.
    let report = client.stats().unwrap();
    assert_eq!(report.datasets.len(), 2);
    assert_eq!(report.probes, 4 * boxes.len() as u64);

    // The same answers over a pipelined v2 connection through the router.
    let mut pipelined = PipelinedClient::connect(router.addr(), 8).unwrap();
    let request = Request::QueryBatch {
        name: name0.clone(),
        boxes: boxes
            .iter()
            .map(|b| b.ranges().iter().map(|r| (r.lo(), r.hi())).collect())
            .collect(),
    };
    let expected: Vec<Vec<u64>> = ref_client
        .query_batch(&name0, &boxes)
        .unwrap()
        .into_iter()
        .map(|ids| ids.into_iter().map(|i| i as u64).collect())
        .collect();
    match pipelined.call(&request).unwrap() {
        Response::QueryResults(rows) => assert_eq!(rows, expected),
        other => panic!("expected QueryResults, got {other:?}"),
    }

    router.shutdown();
    for b in backends {
        b.shutdown();
    }
    reference.shutdown();
}

#[test]
fn replicated_probe_partitioning_merges_in_probe_order() {
    let backends = spawn_backends(3, 2);
    let router = router_over(
        &backends,
        RouterConfig {
            replicated: vec!["rep".to_string()],
            ..RouterConfig::default()
        },
    );

    let points = SyntheticConfig::new(600, 3, Distribution::Independent, 21).generate();
    let reference = Server::bind("127.0.0.1:0", ExecutionContext::with_threads(2))
        .unwrap()
        .spawn()
        .unwrap();
    let mut ref_client = Client::connect(reference.addr()).unwrap();
    ref_client
        .load_dataset("rep", &points, IndexKind::Quadtree)
        .unwrap();

    let mut client = Client::connect(router.addr()).unwrap();
    client
        .load_dataset("rep", &points, IndexKind::Quadtree)
        .unwrap();

    // Replication is real: every backend holds the dataset.
    for (i, backend) in backends.iter().enumerate() {
        let mut direct = Client::connect(backend.addr()).unwrap();
        let report = direct.stats().unwrap();
        assert_eq!(report.datasets.len(), 1, "backend {i}");
        assert_eq!(report.datasets[0].name, "rep", "backend {i}");
    }

    // Batches around the chunking edges: fewer probes than members, an
    // exact multiple, a remainder, and the empty batch.
    for n in [0usize, 1, 2, 3, 10] {
        let boxes = probe_boxes(n);
        assert_eq!(
            client.query_batch("rep", &boxes).unwrap(),
            ref_client.query_batch("rep", &boxes).unwrap(),
            "batch of {n}"
        );
        assert_eq!(
            client.count_batch("rep", &boxes).unwrap(),
            ref_client.count_batch("rep", &boxes).unwrap(),
            "batch of {n}"
        );
    }

    router.shutdown();
    for b in backends {
        b.shutdown();
    }
    reference.shutdown();
}

#[test]
fn router_snapshot_surface_saves_once_and_restores_everywhere() {
    let dir = TempDir::new("router_snapshots");
    let backends: Vec<ServerHandle> = (0..2)
        .map(|_| {
            let server = Server::bind("127.0.0.1:0", ExecutionContext::with_threads(2)).unwrap();
            server.set_snapshot_dir(dir.path());
            server.spawn().unwrap()
        })
        .collect();
    let router = router_over(&backends, RouterConfig::default());

    let name0 = owned_name(0, 2);
    let name1 = owned_name(1, 2);
    let points0 = SyntheticConfig::new(300, 3, Distribution::Independent, 31).generate();
    let points1 = SyntheticConfig::new(300, 3, Distribution::Correlated, 32).generate();
    let boxes = probe_boxes(5);

    let mut client = Client::connect(router.addr()).unwrap();
    client
        .load_dataset(&name0, &points0, IndexKind::Quadtree)
        .unwrap();
    client
        .load_dataset(&name1, &points1, IndexKind::Quadtree)
        .unwrap();
    let expected0 = client.query_batch(&name0, &boxes).unwrap();
    let expected1 = client.query_batch(&name1, &boxes).unwrap();

    // SaveIndex routes to each dataset's owner; the shared directory ends
    // up holding one snapshot per dataset.
    assert!(client.save_index(&name0, IndexKind::Quadtree).unwrap() > 0);
    assert!(client.save_index(&name1, IndexKind::Quadtree).unwrap() > 0);
    let snapshots = std::fs::read_dir(dir.path()).unwrap().count();
    assert_eq!(snapshots, 2);

    // LoadSnapshots fans to every member and reports the merged scan.
    let (restored, skipped) = client.load_snapshots().unwrap();
    assert!(skipped.is_empty(), "{skipped:?}");
    let mut names: Vec<&str> = restored.iter().map(|(n, _)| n.as_str()).collect();
    names.sort_unstable();
    let mut expected_names = vec![name0.as_str(), name1.as_str()];
    expected_names.sort_unstable();
    assert_eq!(names, expected_names);

    // Results are unchanged after the restore round-trip.
    assert_eq!(client.query_batch(&name0, &boxes).unwrap(), expected0);
    assert_eq!(client.query_batch(&name1, &boxes).unwrap(), expected1);

    router.shutdown();
    for b in backends {
        b.shutdown();
    }
}
