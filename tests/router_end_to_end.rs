//! End-to-end tests of the healthy-path shard router: hash placement,
//! replicated probe-space partitioning, merged stats/snapshot surfaces,
//! and both protocol generations on the client side — always asserting
//! the routed results are byte-identical to a single-process run.

mod common;

use common::TempDir;
use eclipse_core::exec::ExecutionContext;
use eclipse_core::WeightRatioBox;
use eclipse_data::synthetic::{Distribution, SyntheticConfig};
use eclipse_persist::fnv1a;
use eclipse_router::router::{Router, RouterConfig};
use eclipse_serve::client::{Client, PipelinedClient};
use eclipse_serve::protocol::{IndexKind, Request, Response};
use eclipse_serve::server::{Server, ServerHandle};

/// A dataset name that hash-places onto `slot` of a `members`-wide ring.
fn owned_name(slot: usize, members: usize) -> String {
    (0..)
        .map(|i| format!("ds{i}"))
        .find(|name| (fnv1a(name.as_bytes()) % members as u64) as usize == slot)
        .expect("some name hashes onto every slot")
}

fn probe_boxes(n: usize) -> Vec<WeightRatioBox> {
    (0..n)
        .map(|i| {
            let lo = 0.2 + 0.07 * i as f64;
            WeightRatioBox::uniform(3, lo, lo + 2.5).unwrap()
        })
        .collect()
}

fn spawn_backends(n: usize, threads: usize) -> Vec<ServerHandle> {
    (0..n)
        .map(|_| {
            Server::bind("127.0.0.1:0", ExecutionContext::with_threads(threads))
                .unwrap()
                .spawn()
                .unwrap()
        })
        .collect()
}

fn router_over(backends: &[ServerHandle], config: RouterConfig) -> eclipse_router::RouterHandle {
    let config = RouterConfig {
        backends: backends.iter().map(|b| b.addr().to_string()).collect(),
        ..config
    };
    Router::bind("127.0.0.1:0", config)
        .unwrap()
        .spawn()
        .unwrap()
}

#[test]
fn hashed_placement_shards_datasets_and_merges_identically_to_one_server() {
    let backends = spawn_backends(2, 2);
    let router = router_over(&backends, RouterConfig::default());

    let name0 = owned_name(0, 2);
    let name1 = owned_name(1, 2);
    let points0 = SyntheticConfig::new(400, 3, Distribution::Independent, 11).generate();
    let points1 = SyntheticConfig::new(400, 3, Distribution::AntiCorrelated, 12).generate();
    let boxes = probe_boxes(7);

    // The unsharded reference: one process holding both datasets.
    let reference = Server::bind("127.0.0.1:0", ExecutionContext::with_threads(2))
        .unwrap()
        .spawn()
        .unwrap();
    let mut ref_client = Client::connect(reference.addr()).unwrap();
    ref_client
        .load_dataset(&name0, &points0, IndexKind::Quadtree)
        .unwrap();
    ref_client
        .load_dataset(&name1, &points1, IndexKind::Quadtree)
        .unwrap();

    let mut client = Client::connect(router.addr()).unwrap();
    client.ping().unwrap();
    client
        .load_dataset(&name0, &points0, IndexKind::Quadtree)
        .unwrap();
    client
        .load_dataset(&name1, &points1, IndexKind::Quadtree)
        .unwrap();

    // Placement is real: each backend holds exactly its own dataset.
    for (i, expected_name) in [(0, &name0), (1, &name1)] {
        let mut direct = Client::connect(backends[i].addr()).unwrap();
        let report = direct.stats().unwrap();
        let held: Vec<&str> = report.datasets.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(held, vec![expected_name.as_str()], "backend {i}");
    }

    // Routed results are byte-identical to the single-process run.
    for name in [&name0, &name1] {
        assert_eq!(
            client.query_batch(name, &boxes).unwrap(),
            ref_client.query_batch(name, &boxes).unwrap(),
            "{name}"
        );
        assert_eq!(
            client.count_batch(name, &boxes).unwrap(),
            ref_client.count_batch(name, &boxes).unwrap(),
            "{name}"
        );
    }

    // Merged stats see both datasets and the summed probe counters.
    let report = client.stats().unwrap();
    assert_eq!(report.datasets.len(), 2);
    assert_eq!(report.probes, 4 * boxes.len() as u64);

    // The same answers over a pipelined v2 connection through the router.
    let mut pipelined = PipelinedClient::connect(router.addr(), 8).unwrap();
    let request = Request::QueryBatch {
        name: name0.clone(),
        boxes: boxes
            .iter()
            .map(|b| b.ranges().iter().map(|r| (r.lo(), r.hi())).collect())
            .collect(),
    };
    let expected: Vec<Vec<u64>> = ref_client
        .query_batch(&name0, &boxes)
        .unwrap()
        .into_iter()
        .map(|ids| ids.into_iter().map(|i| i as u64).collect())
        .collect();
    match pipelined.call(&request).unwrap() {
        Response::QueryResults(rows) => assert_eq!(rows, expected),
        other => panic!("expected QueryResults, got {other:?}"),
    }

    router.shutdown();
    for b in backends {
        b.shutdown();
    }
    reference.shutdown();
}

#[test]
fn replicated_probe_partitioning_merges_in_probe_order() {
    let backends = spawn_backends(3, 2);
    let router = router_over(
        &backends,
        RouterConfig {
            replicated: vec!["rep".to_string()],
            ..RouterConfig::default()
        },
    );

    let points = SyntheticConfig::new(600, 3, Distribution::Independent, 21).generate();
    let reference = Server::bind("127.0.0.1:0", ExecutionContext::with_threads(2))
        .unwrap()
        .spawn()
        .unwrap();
    let mut ref_client = Client::connect(reference.addr()).unwrap();
    ref_client
        .load_dataset("rep", &points, IndexKind::Quadtree)
        .unwrap();

    let mut client = Client::connect(router.addr()).unwrap();
    client
        .load_dataset("rep", &points, IndexKind::Quadtree)
        .unwrap();

    // Replication is real: every backend holds the dataset.
    for (i, backend) in backends.iter().enumerate() {
        let mut direct = Client::connect(backend.addr()).unwrap();
        let report = direct.stats().unwrap();
        assert_eq!(report.datasets.len(), 1, "backend {i}");
        assert_eq!(report.datasets[0].name, "rep", "backend {i}");
    }

    // Batches around the chunking edges: fewer probes than members, an
    // exact multiple, a remainder, and the empty batch.
    for n in [0usize, 1, 2, 3, 10] {
        let boxes = probe_boxes(n);
        assert_eq!(
            client.query_batch("rep", &boxes).unwrap(),
            ref_client.query_batch("rep", &boxes).unwrap(),
            "batch of {n}"
        );
        assert_eq!(
            client.count_batch("rep", &boxes).unwrap(),
            ref_client.count_batch("rep", &boxes).unwrap(),
            "batch of {n}"
        );
    }

    router.shutdown();
    for b in backends {
        b.shutdown();
    }
    reference.shutdown();
}

#[test]
fn replicated_mutations_fan_to_every_member_and_stats_merge_by_name() {
    let backends = spawn_backends(3, 2);
    let router = router_over(
        &backends,
        RouterConfig {
            replicated: vec!["rep".to_string()],
            ..RouterConfig::default()
        },
    );

    let points = SyntheticConfig::new(300, 3, Distribution::Independent, 41).generate();
    let mut client = Client::connect(router.addr()).unwrap();
    client
        .load_dataset("rep", &points, IndexKind::Quadtree)
        .unwrap();

    // Interleaved inserts and deletes through the router, mirrored on a
    // local reference engine.
    let engine = eclipse_core::EclipseEngine::new(points).unwrap();
    for i in 0..4 {
        let coords = [0.15 + 0.1 * i as f64, 0.2, 0.25];
        client.insert("rep", &coords).unwrap();
        engine
            .insert(eclipse_core::Point::new(coords.to_vec()))
            .unwrap();
    }
    for id in [7u64, 301, 3] {
        client.delete("rep", id).unwrap();
        engine.delete(id as usize).unwrap();
    }

    // Every member applied every mutation: replicas answer byte-identically
    // to the reference engine and agree on the epoch.
    let boxes = probe_boxes(6);
    let expected: Vec<Vec<usize>> = boxes.iter().map(|b| engine.eclipse(b).unwrap()).collect();
    let mut member_bytes = 0u64;
    for (i, backend) in backends.iter().enumerate() {
        let mut direct = Client::connect(backend.addr()).unwrap();
        assert_eq!(
            direct.query_batch("rep", &boxes).unwrap(),
            expected,
            "replica {i} diverged after the mutation fan"
        );
        let report = direct.stats().unwrap();
        assert_eq!(report.datasets.len(), 1, "replica {i}");
        assert_eq!(report.datasets[0].epoch, 7, "replica {i}");
        member_bytes += report.datasets[0].bytes;
    }

    // Merged stats answer ONE row per dataset name (regression: the merge
    // used to keep the first member's row and drop the rest), with the
    // member bytes aggregated and the shared epoch preserved.
    let report = client.stats().unwrap();
    let rep_rows: Vec<_> = report.datasets.iter().filter(|d| d.name == "rep").collect();
    assert_eq!(rep_rows.len(), 1, "one merged row per dataset name");
    assert_eq!(rep_rows[0].epoch, 7);
    assert_eq!(rep_rows[0].bytes, member_bytes);
    assert!(rep_rows[0].resident);
    assert_eq!(report.total_bytes, member_bytes);

    router.shutdown();
    for b in backends {
        b.shutdown();
    }
}

#[test]
fn backend_eviction_reloads_preserve_epochs_and_cause_no_failovers() {
    use eclipse_core::index::IntersectionIndexKind;
    use eclipse_serve::server::ServerConfig;

    let warm_bytes = |points: &[eclipse_core::Point]| -> u64 {
        let engine = eclipse_core::EclipseEngine::new(points.to_vec())
            .unwrap()
            .with_execution_context(ExecutionContext::serial());
        engine.build_index(IntersectionIndexKind::Quadtree).unwrap();
        engine.skyline();
        engine.heap_bytes() as u64
    };
    let points0 = SyntheticConfig::new(400, 3, Distribution::Independent, 51).generate();
    let points1 = SyntheticConfig::new(400, 3, Distribution::Independent, 52).generate();
    let (b0, b1) = (warm_bytes(&points0), warm_bytes(&points1));

    // A single budgeted backend that can hold one dataset but not both, so
    // alternating datasets through the router keeps evicting and reloading.
    let dir = TempDir::new("router_memory");
    let server = Server::bind_with_config(
        "127.0.0.1:0",
        ExecutionContext::with_threads(2),
        ServerConfig {
            max_memory_bytes: Some(b0.max(b1) + b0.min(b1) / 2),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    server.set_snapshot_dir(dir.path());
    let backends = vec![server.spawn().unwrap()];
    let router = router_over(&backends, RouterConfig::default());
    let mut client = Client::connect(router.addr()).unwrap();

    client
        .load_dataset("ds0", &points0, IndexKind::Quadtree)
        .unwrap();
    let inserted = [0.4, 0.4, 0.4];
    assert_eq!(client.insert("ds0", &inserted).unwrap().epoch, 1);
    client
        .load_dataset("ds1", &points1, IndexKind::Quadtree)
        .unwrap();

    let engine0 = eclipse_core::EclipseEngine::new(points0).unwrap();
    engine0
        .insert(eclipse_core::Point::new(inserted.to_vec()))
        .unwrap();
    let engine1 = eclipse_core::EclipseEngine::new(points1).unwrap();
    let boxes = probe_boxes(5);
    let expected0: Vec<Vec<usize>> = boxes.iter().map(|b| engine0.eclipse(b).unwrap()).collect();
    let expected1: Vec<Vec<usize>> = boxes.iter().map(|b| engine1.eclipse(b).unwrap()).collect();

    // Thrash: every round trips an eviction and a snapshot reload on the
    // backend, yet routed answers never change and the mutation epoch
    // survives every round trip through disk.
    for round in 0..3 {
        assert_eq!(
            client.query_batch("ds0", &boxes).unwrap(),
            expected0,
            "round {round}"
        );
        assert_eq!(
            client.query_batch("ds1", &boxes).unwrap(),
            expected1,
            "round {round}"
        );
    }
    let report = client.stats().unwrap();
    assert!(
        report.evictions > 0,
        "the budget must have forced evictions"
    );
    assert!(
        report.reloads > 0,
        "touches must have reloaded from snapshots"
    );
    let ds0 = report.datasets.iter().find(|d| d.name == "ds0").unwrap();
    assert_eq!(ds0.epoch, 1, "epoch must survive eviction round trips");

    // Reload latency is flow control, not ill health: the router saw a
    // healthy member throughout and never promoted a standby.
    assert!(
        router.failovers().is_empty(),
        "reloads must not read as member failures: {:?}",
        router.failovers()
    );

    router.shutdown();
    for b in backends {
        b.shutdown();
    }
}

#[test]
fn router_snapshot_surface_saves_once_and_restores_everywhere() {
    let dir = TempDir::new("router_snapshots");
    let backends: Vec<ServerHandle> = (0..2)
        .map(|_| {
            let server = Server::bind("127.0.0.1:0", ExecutionContext::with_threads(2)).unwrap();
            server.set_snapshot_dir(dir.path());
            server.spawn().unwrap()
        })
        .collect();
    let router = router_over(&backends, RouterConfig::default());

    let name0 = owned_name(0, 2);
    let name1 = owned_name(1, 2);
    let points0 = SyntheticConfig::new(300, 3, Distribution::Independent, 31).generate();
    let points1 = SyntheticConfig::new(300, 3, Distribution::Correlated, 32).generate();
    let boxes = probe_boxes(5);

    let mut client = Client::connect(router.addr()).unwrap();
    client
        .load_dataset(&name0, &points0, IndexKind::Quadtree)
        .unwrap();
    client
        .load_dataset(&name1, &points1, IndexKind::Quadtree)
        .unwrap();
    let expected0 = client.query_batch(&name0, &boxes).unwrap();
    let expected1 = client.query_batch(&name1, &boxes).unwrap();

    // SaveIndex routes to each dataset's owner; the shared directory ends
    // up holding one snapshot per dataset.
    assert!(client.save_index(&name0, IndexKind::Quadtree).unwrap() > 0);
    assert!(client.save_index(&name1, IndexKind::Quadtree).unwrap() > 0);
    let snapshots = std::fs::read_dir(dir.path()).unwrap().count();
    assert_eq!(snapshots, 2);

    // LoadSnapshots fans to every member and reports the merged scan.
    let (restored, skipped) = client.load_snapshots().unwrap();
    assert!(skipped.is_empty(), "{skipped:?}");
    let mut names: Vec<&str> = restored.iter().map(|(n, _)| n.as_str()).collect();
    names.sort_unstable();
    let mut expected_names = vec![name0.as_str(), name1.as_str()];
    expected_names.sort_unstable();
    assert_eq!(names, expected_names);

    // Results are unchanged after the restore round-trip.
    assert_eq!(client.query_batch(&name0, &boxes).unwrap(), expected0);
    assert_eq!(client.query_batch(&name1, &boxes).unwrap(), expected1);

    router.shutdown();
    for b in backends {
        b.shutdown();
    }
}
