//! Compiled-test twin of the crate-root doctests: the paper's running hotel
//! example (Figures 1–3) through the public engine API, including the 1NN
//! and skyline instantiations of the eclipse operator.

mod common;

use eclipse_core::query::Algorithm;
use eclipse_core::{EclipseEngine, WeightRatioBox};

#[test]
fn figure3_eclipse_result_on_the_hotel_example() {
    let engine = EclipseEngine::new(common::paper_hotels()).unwrap();

    // "Distance is between 1/4x and 2x as important as price" (Figure 3).
    let prefs = WeightRatioBox::uniform(2, 0.25, 2.0).unwrap();
    assert_eq!(engine.eclipse(&prefs).unwrap(), vec![0, 1, 2]);
}

#[test]
fn eclipse_instantiates_1nn_and_skyline() {
    let engine = EclipseEngine::new(common::paper_hotels()).unwrap();

    // A degenerate ratio box [2, 2] is the 1NN query with w = <2, 1>
    // (Figure 1): p1 wins.
    assert_eq!(
        engine
            .eclipse(&WeightRatioBox::exact(&[2.0]).unwrap())
            .unwrap(),
        vec![0]
    );
    let nn = engine.nn(&[2.0]).unwrap().expect("non-empty dataset");
    assert_eq!(nn.index, 0);

    // An unbounded ratio box [0, +inf) is the skyline query (Figure 2):
    // every hotel but the dominated p4.
    assert_eq!(
        engine
            .eclipse(&WeightRatioBox::skyline(2).unwrap())
            .unwrap(),
        vec![0, 1, 2]
    );
    assert_eq!(engine.skyline(), vec![0, 1, 2]);
}

#[test]
fn every_algorithm_agrees_on_the_hotel_example() {
    let engine = EclipseEngine::new(common::paper_hotels()).unwrap();
    let prefs = WeightRatioBox::uniform(2, 0.25, 2.0).unwrap();
    for alg in [
        Algorithm::Auto,
        Algorithm::Baseline,
        Algorithm::Transform,
        Algorithm::IndexQuadtree,
        Algorithm::IndexCuttingTree,
    ] {
        assert_eq!(
            engine.eclipse_with(&prefs, alg).unwrap(),
            vec![0, 1, 2],
            "{alg:?}"
        );
    }
}
