//! End-to-end warm-restart test: a dataset served by one `eclipse-serve`
//! server is snapshotted over the wire (`SaveIndex`), the server goes away,
//! and a second server started over the same `--snapshot-dir` warm-loads the
//! dataset and answers `QueryBatch`/`CountBatch` with byte-identical wire
//! results — at one and at four query threads (the CI thread-parity matrix
//! additionally re-runs this file under `ECLIPSE_THREADS=1` and `4`).

mod common;

use common::TempDir;
use eclipse_core::exec::ExecutionContext;
use eclipse_core::WeightRatioBox;
use eclipse_data::synthetic::{Distribution, SyntheticConfig};
use eclipse_serve::client::{Client, ClientError};
use eclipse_serve::protocol::IndexKind;
use eclipse_serve::server::Server;

fn probe_boxes() -> Vec<WeightRatioBox> {
    [
        (0.18, 5.67),
        (0.36, 2.75),
        (0.84, 1.19),
        (1.0, 1.0),
        // Escapes the indexed region: the restored index must fall back to
        // the exact linear scan just like the rebuilt one.
        (0.5, 20.0),
    ]
    .into_iter()
    .map(|(lo, hi)| WeightRatioBox::uniform(3, lo, hi).unwrap())
    .collect()
}

#[test]
fn wire_results_survive_a_server_restart_at_1_and_4_threads() {
    let points = SyntheticConfig::new(500, 3, Distribution::Independent, 4242).generate();
    let boxes = probe_boxes();
    for threads in [1usize, 4] {
        for warm in [IndexKind::Quadtree, IndexKind::CuttingTree] {
            let dir = TempDir::new(&format!("restart_{threads}_{warm:?}"));

            // First life: load, query, snapshot, shut down.
            let server =
                Server::bind("127.0.0.1:0", ExecutionContext::with_threads(threads)).unwrap();
            server.set_snapshot_dir(dir.path());
            let handle = server.spawn().unwrap();
            let mut client = Client::connect(handle.addr()).unwrap();
            client.load_dataset("inde", &points, warm).unwrap();
            let expected = client.query_batch("inde", &boxes).unwrap();
            let expected_counts = client.count_batch("inde", &boxes).unwrap();
            let bytes = client.save_index("inde", warm).unwrap();
            assert!(bytes > 0);
            handle.shutdown();

            // Second life: same snapshot dir, no LoadDataset traffic — the
            // dataset and its index come back from disk.
            let server =
                Server::bind("127.0.0.1:0", ExecutionContext::with_threads(threads)).unwrap();
            server.set_snapshot_dir(dir.path());
            let scan = server.load_snapshots().unwrap();
            assert!(scan.skipped.is_empty(), "{:?}", scan.skipped);
            assert_eq!(scan.restored.len(), 1, "threads {threads}, warm {warm:?}");
            assert_eq!(scan.restored[0].0, "inde");
            assert_eq!(scan.restored[0].1.points, 500);
            let handle = server.spawn().unwrap();
            let mut client = Client::connect(handle.addr()).unwrap();
            assert_eq!(
                client.query_batch("inde", &boxes).unwrap(),
                expected,
                "threads {threads}, warm {warm:?}"
            );
            assert_eq!(
                client.count_batch("inde", &boxes).unwrap(),
                expected_counts,
                "threads {threads}, warm {warm:?}"
            );
            let report = client.stats().unwrap();
            assert_eq!(report.datasets.len(), 1);
            assert_eq!(report.datasets[0].points, 500);
            handle.shutdown();
        }
    }
}

#[test]
fn restoring_a_stale_snapshot_is_an_error_response_over_the_wire() {
    // Regression for the mismatch satellite: a snapshot taken over one
    // dataset must not serve results for different data registered later
    // under the same name — the server answers a typed error and the
    // connection stays usable.
    let dir = TempDir::new("stale");
    let old = SyntheticConfig::new(300, 3, Distribution::Independent, 7).generate();
    let new = SyntheticConfig::new(300, 3, Distribution::AntiCorrelated, 8).generate();
    let server = Server::bind("127.0.0.1:0", ExecutionContext::with_threads(2)).unwrap();
    server.set_snapshot_dir(dir.path());
    let handle = server.spawn().unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    client
        .load_dataset("ds", &old, IndexKind::Quadtree)
        .unwrap();
    client.save_index("ds", IndexKind::Quadtree).unwrap();
    client
        .load_dataset("ds", &new, IndexKind::Quadtree)
        .unwrap();
    match client.restore_index("ds", IndexKind::Quadtree) {
        Err(ClientError::Server(m)) => assert!(m.contains("mismatch"), "{m}"),
        other => panic!("expected a mismatch error, got {other:?}"),
    }

    // Same connection, correct answers for the *new* dataset afterwards.
    let b = [WeightRatioBox::uniform(3, 0.36, 2.75).unwrap()];
    let engine = eclipse_core::EclipseEngine::new(new).unwrap();
    assert_eq!(
        client.query_batch("ds", &b).unwrap(),
        vec![engine.eclipse(&b[0]).unwrap()]
    );

    // A dimensionality change is caught the same way.
    let flat = SyntheticConfig::new(200, 2, Distribution::Independent, 9).generate();
    client
        .load_dataset("ds", &flat, IndexKind::Quadtree)
        .unwrap();
    match client.restore_index("ds", IndexKind::Quadtree) {
        Err(ClientError::Server(m)) => assert!(m.contains("dimension"), "{m}"),
        other => panic!("expected a dimension error, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn pre_v3_snapshot_over_a_mutated_dataset_is_an_epoch_mismatch() {
    // A pre-v3 (epoch-less) snapshot decodes at epoch 0.  If the registered
    // dataset has since been mutated — even back to the exact same bits —
    // restoring that snapshot must answer the typed `SnapshotMismatch`
    // (epoch 0 vs epoch 2), not silently serve pre-mutation index state,
    // and the connection must stay usable.
    let fixture = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/hotels-2d-quad-v1.eclsnap");
    for threads in [1usize, 4] {
        let dir = TempDir::new(&format!("pre_v3_epoch_{threads}"));
        std::fs::copy(&fixture, dir.path().join("hotels-quad.eclsnap")).unwrap();

        let server = Server::bind("127.0.0.1:0", ExecutionContext::with_threads(threads)).unwrap();
        server.set_snapshot_dir(dir.path());
        let handle = server.spawn().unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        client
            .load_dataset("hotels", &common::paper_hotels(), IndexKind::Quadtree)
            .unwrap();

        // Mutate to epoch 2, ending on byte-identical dataset contents: the
        // epoch check must fire even though the points match.
        let ack = client.insert("hotels", &[9.0, 9.0]).unwrap();
        client.delete("hotels", ack.len - 1).unwrap();

        match client.restore_index("hotels", IndexKind::Quadtree) {
            Err(ClientError::Server(m)) => {
                assert!(m.contains("mismatch"), "threads {threads}: {m}");
                assert!(m.contains("epoch"), "threads {threads}: {m}");
            }
            other => panic!("threads {threads}: expected an epoch mismatch, got {other:?}"),
        }

        // Same connection, still correct answers from the live engine.
        let b = [WeightRatioBox::uniform(2, 0.5, 2.0).unwrap()];
        let engine = eclipse_core::EclipseEngine::new(common::paper_hotels()).unwrap();
        assert_eq!(
            client.query_batch("hotels", &b).unwrap(),
            vec![engine.eclipse(&b[0]).unwrap()],
            "threads {threads}"
        );
        handle.shutdown();
    }
}

#[test]
fn snapshot_requests_without_a_snapshot_dir_are_clean_errors() {
    let points = SyntheticConfig::new(100, 3, Distribution::Independent, 11).generate();
    let handle = Server::bind("127.0.0.1:0", ExecutionContext::serial())
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .load_dataset("inde", &points, IndexKind::Quadtree)
        .unwrap();
    match client.save_index("inde", IndexKind::Quadtree) {
        Err(ClientError::Server(m)) => assert!(m.contains("--snapshot-dir"), "{m}"),
        other => panic!("expected a server error, got {other:?}"),
    }
    match client.restore_index("inde", IndexKind::Quadtree) {
        Err(ClientError::Server(_)) => {}
        other => panic!("expected a server error, got {other:?}"),
    }
    // The connection is still usable.
    client.ping().unwrap();
    handle.shutdown();
}
