//! Serving-layer concurrency: many client threads hammering one dataset
//! with interleaved query and count batches must each see exactly the
//! answers a serial replay of their request stream produces (extends the
//! engine-level `engine_concurrency.rs` suite across the network boundary).

use std::sync::Arc;

use eclipse_core::exec::{ExecutionContext, QueryOptions};
use eclipse_core::index::IntersectionIndexKind;
use eclipse_core::{EclipseEngine, WeightRatioBox};
use eclipse_data::synthetic::{Distribution, SyntheticConfig};
use eclipse_serve::client::Client;
use eclipse_serve::protocol::IndexKind;
use eclipse_serve::server::Server;

/// The batch a given (thread, round) pair issues: deterministic, so the
/// serial replay below reproduces every request exactly.
fn batch_for(t: usize, round: usize) -> Vec<WeightRatioBox> {
    let ranges = [
        (0.18, 5.67),
        (0.36, 2.75),
        (0.58, 1.73),
        (0.84, 1.19),
        (0.25, 2.0),
        (0.9, 1.1),
    ];
    (0..1 + (t + round) % 4)
        .map(|i| {
            let (lo, hi) = ranges[(t + round + i) % ranges.len()];
            WeightRatioBox::uniform(3, lo, hi).unwrap()
        })
        .collect()
}

#[test]
fn concurrent_clients_match_serial_replay() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 6;

    let points = SyntheticConfig::new(500, 3, Distribution::Independent, 99).generate();
    let server = Server::bind("127.0.0.1:0", ExecutionContext::with_threads(4)).unwrap();
    server
        .register_dataset("inde", points.clone(), IndexKind::Quadtree)
        .unwrap();
    let handle = server.spawn().unwrap();
    let addr = handle.addr();

    // Serial replay oracle: the same engine configuration answering the same
    // batches in-process, one after another.
    let oracle = EclipseEngine::new(points).unwrap();
    oracle.build_index(IntersectionIndexKind::Quadtree).unwrap();
    let oracle = Arc::new(oracle);

    let mut workers = Vec::new();
    for t in 0..THREADS {
        let oracle = Arc::clone(&oracle);
        workers.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            for round in 0..ROUNDS {
                let batch = batch_for(t, round);
                let expected = oracle
                    .eclipse_query_batch(&batch, &QueryOptions::default())
                    .unwrap();
                if (t + round) % 2 == 0 {
                    assert_eq!(
                        client.query_batch("inde", &batch).unwrap(),
                        expected,
                        "thread {t}, round {round}"
                    );
                } else {
                    let counts: Vec<usize> = expected.iter().map(Vec::len).collect();
                    assert_eq!(
                        client.count_batch("inde", &batch).unwrap(),
                        counts,
                        "thread {t}, round {round}"
                    );
                }
            }
        }));
    }
    for worker in workers {
        worker.join().unwrap();
    }

    // Every request was answered and none errored.
    let mut client = Client::connect(addr).unwrap();
    let report = client.stats().unwrap();
    assert_eq!(report.errors, 0);
    assert_eq!(
        report.query_batches + report.count_batches,
        (THREADS * ROUNDS) as u64
    );
    let total_probes: usize = (0..THREADS)
        .flat_map(|t| (0..ROUNDS).map(move |r| batch_for(t, r).len()))
        .sum();
    assert_eq!(report.probes, total_probes as u64);
    handle.shutdown();
}
