//! Protocol-v2 serving: pipelined clients must agree byte-for-byte with the
//! blocking client at every depth, the `Hello` handshake must negotiate and
//! clamp, and the flow-control surface (deadlines, admission control,
//! graceful drain, mid-batch server death) must fail *typed* — never with a
//! panic, a wedged connection, or an opaque i/o error.

use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use eclipse_core::exec::{ExecutionContext, QueryOptions};
use eclipse_core::index::IntersectionIndexKind;
use eclipse_core::{EclipseEngine, WeightRatioBox};
use eclipse_data::synthetic::{Distribution, SyntheticConfig};
use eclipse_serve::client::{Client, ClientError, PipelinedClient};
use eclipse_serve::protocol::{
    read_frame, write_frame, FrameHeader, IndexKind, Request, Response, PROTOCOL_V2,
};
use eclipse_serve::server::{Server, ServerConfig, ServerHandle};

/// Probes big enough that one request occupies the (single) worker for many
/// milliseconds — the lever every flow-control test below leans on.
const HEAVY_PROBES: usize = 1024;

fn dataset() -> Vec<eclipse_core::Point> {
    SyntheticConfig::new(400, 3, Distribution::Independent, 77).generate()
}

/// Deterministic light probe `i` (the same generator everywhere, so oracle
/// and server replay identical request streams).
fn probe(i: usize) -> WeightRatioBox {
    let ranges = [
        (0.18, 5.67),
        (0.36, 2.75),
        (0.58, 1.73),
        (0.84, 1.19),
        (0.25, 2.0),
        (0.9, 1.1),
    ];
    let (lo, hi) = ranges[i % ranges.len()];
    WeightRatioBox::uniform(3, lo, hi).unwrap()
}

/// A `CountBatch` request heavy enough to hold a worker busy.
fn heavy_count(name: &str) -> Request {
    heavy_count_n(name, HEAVY_PROBES)
}

fn heavy_count_n(name: &str, probes: usize) -> Request {
    Request::CountBatch {
        name: name.to_string(),
        // d − 1 = 2 ratio ranges for the 3-dimensional dataset.
        boxes: vec![vec![(0.01, 100.0); 2]; probes],
    }
}

/// One dispatcher worker and no inline fast path: every request goes
/// through the queue, so a heavy request in front deterministically delays
/// everything behind it.
fn queued_config() -> ServerConfig {
    ServerConfig {
        workers: 1,
        inline_fast_path: false,
        ..ServerConfig::default()
    }
}

fn spawn_server(exec: ExecutionContext, config: ServerConfig) -> (ServerHandle, SocketAddr) {
    let server = Server::bind_with_config("127.0.0.1:0", exec, config).unwrap();
    server
        .register_dataset("inde", dataset(), IndexKind::Quadtree)
        .unwrap();
    let handle = server.spawn().unwrap();
    let addr = handle.addr();
    (handle, addr)
}

/// Satellite e2e: pipelined results at depth 1/8/64 are identical to the
/// blocking client's, at 1 and at 4 executor threads.
#[test]
fn pipelined_depths_match_blocking_at_1_and_4_threads() {
    let probes: Vec<WeightRatioBox> = (0..96).map(probe).collect();
    for threads in [1usize, 4] {
        let (handle, addr) = spawn_server(
            ExecutionContext::with_threads(threads),
            ServerConfig::default(),
        );

        // Blocking oracle: one request per probe, strictly serial.
        let mut blocking = Client::connect(addr).unwrap();
        let mut expected_rows = Vec::with_capacity(probes.len());
        let mut expected_counts = Vec::with_capacity(probes.len());
        for p in &probes {
            let rows = blocking
                .query_batch("inde", std::slice::from_ref(p))
                .unwrap();
            expected_rows.extend(rows);
            expected_counts.extend(
                blocking
                    .count_batch("inde", std::slice::from_ref(p))
                    .unwrap(),
            );
        }

        for depth in [1u32, 8, 64] {
            let mut piped = PipelinedClient::connect(addr, depth).unwrap();
            assert_eq!(piped.version(), PROTOCOL_V2);
            assert_eq!(piped.pipe_size(), depth);
            assert_eq!(
                piped.query_many("inde", &probes, 1).unwrap(),
                expected_rows,
                "query_many, depth {depth}, {threads} threads"
            );
            assert_eq!(
                piped.count_many("inde", &probes, 1).unwrap(),
                expected_counts,
                "count_many, depth {depth}, {threads} threads"
            );
        }
        handle.shutdown();
    }
}

/// v1 clients may pipeline too: the server guarantees response order even
/// when four dispatcher workers finish requests out of submission order
/// (the per-connection reorder buffer).  Interleaving query and count
/// requests makes any ordering slip show up as an `UnexpectedResponse`.
#[test]
fn v1_pipelining_preserves_request_order() {
    let points = dataset();
    let (handle, addr) = spawn_server(
        ExecutionContext::with_threads(4),
        ServerConfig {
            workers: 4,
            inline_fast_path: false,
            ..ServerConfig::default()
        },
    );

    let oracle = EclipseEngine::new(points).unwrap();
    oracle.build_index(IntersectionIndexKind::Quadtree).unwrap();
    let oracle = Arc::new(oracle);

    let mut client = PipelinedClient::connect_v1(addr, 8).unwrap();
    let mut ids = Vec::new();
    for i in 0..40usize {
        // Even slots are heavy counts, odd slots light queries — the light
        // ones complete first server-side, so FIFO delivery is doing work.
        let request = if i % 2 == 0 {
            Request::CountBatch {
                name: "inde".to_string(),
                boxes: vec![vec![(0.01, 100.0); 2]; 64],
            }
        } else {
            Request::QueryBatch {
                name: "inde".to_string(),
                boxes: vec![probe(i).ranges().iter().map(|r| (r.lo(), r.hi())).collect()],
            }
        };
        ids.push((i, client.submit(&request).unwrap()));
    }
    for (i, id) in ids {
        match client.recv(id).unwrap() {
            Response::Counts(counts) if i % 2 == 0 => {
                let batch = vec![WeightRatioBox::uniform(3, 0.01, 100.0).unwrap(); 64];
                let expected: Vec<u64> = oracle
                    .eclipse_query_batch(&batch, &QueryOptions::default())
                    .unwrap()
                    .iter()
                    .map(|ids| ids.len() as u64)
                    .collect();
                assert_eq!(counts, expected, "slot {i}");
            }
            Response::QueryResults(rows) if i % 2 == 1 => {
                let expected: Vec<Vec<u64>> = oracle
                    .eclipse_query_batch(&[probe(i)], &QueryOptions::default())
                    .unwrap()
                    .iter()
                    .map(|ids| ids.iter().map(|&p| p as u64).collect())
                    .collect();
                assert_eq!(rows, expected, "slot {i}");
            }
            other => panic!("slot {i}: response out of order: {other:?}"),
        }
    }
    handle.shutdown();
}

/// The handshake clamps the requested depth to the server's cap, and a
/// `Hello` after the first frame is a typed error that leaves the
/// connection in its established mode.
#[test]
fn hello_negotiation_clamps_depth_and_rejects_midstream_hello() {
    let (handle, addr) = spawn_server(
        ExecutionContext::serial(),
        ServerConfig {
            max_pipeline: 4,
            ..ServerConfig::default()
        },
    );

    let mut client = PipelinedClient::connect(addr, 64).unwrap();
    assert_eq!(client.version(), PROTOCOL_V2);
    assert_eq!(client.pipe_size(), 4, "requested 64, server cap is 4");

    let err = client
        .call(&Request::Hello {
            max_version: PROTOCOL_V2,
            pipe_size: 8,
        })
        .unwrap_err();
    assert!(
        matches!(err, ClientError::Server(ref m) if m.contains("first frame")),
        "mid-stream Hello should be a typed server error, got {err:?}"
    );
    // The connection survived the rejected Hello.
    assert!(matches!(
        client.call(&Request::Ping).unwrap(),
        Response::Pong
    ));
    handle.shutdown();
}

/// A request whose deadline passes while it waits behind a heavy request is
/// answered with a typed `Timeout`, never executed, and the connection (and
/// the `timeouts` stats counter) reflect exactly that.
#[test]
fn deadline_expiry_is_typed_and_connection_survives() {
    let (handle, addr) = spawn_server(ExecutionContext::serial(), queued_config());

    let mut client = PipelinedClient::connect(addr, 8).unwrap();
    let heavy = client.submit(&heavy_count("inde")).unwrap();
    // 1 ms deadline behind a many-millisecond request on the only worker:
    // guaranteed to expire before execution starts.
    let doomed = client.submit_with_deadline(&Request::Ping, 1).unwrap();
    client.flush().unwrap();

    assert!(matches!(client.recv(heavy).unwrap(), Response::Counts(_)));
    let err = client.recv(doomed).unwrap_err();
    assert!(
        matches!(err, ClientError::TimedOut { deadline_ms: 1 }),
        "expected typed timeout, got {err:?}"
    );

    // The connection is still usable, and the counter recorded the timeout.
    assert!(matches!(
        client.call(&Request::Ping).unwrap(),
        Response::Pong
    ));
    match client.call(&Request::Stats).unwrap() {
        Response::Stats(report) => {
            assert_eq!(report.timeouts, 1);
            assert_eq!(report.rejected, 0);
        }
        other => panic!("expected stats, got {other:?}"),
    }
    handle.shutdown();
}

/// Deadlines are a v2 feature: a v1 connection rejects them client-side
/// before anything reaches the wire.
#[test]
fn v1_connection_rejects_deadlines_client_side() {
    let (handle, addr) = spawn_server(ExecutionContext::serial(), ServerConfig::default());
    let mut client = PipelinedClient::connect_v1(addr, 4).unwrap();
    let err = client.submit_with_deadline(&Request::Ping, 5).unwrap_err();
    assert!(matches!(err, ClientError::InvalidRequest(_)));
    // Nothing was sent; the connection still works.
    assert!(matches!(
        client.call(&Request::Ping).unwrap(),
        Response::Pong
    ));
    handle.shutdown();
}

/// Blasting past the negotiated pipeline depth gets typed `Overloaded`
/// rejections (echoing the breached cap), the admitted requests still
/// complete, the connection stays usable, and the `rejected` counter adds
/// up.  Drives the wire directly so the client-side depth limiter cannot
/// get in the way.
#[test]
fn overload_rejection_is_typed_counted_and_recoverable() {
    let (handle, addr) = spawn_server(
        ExecutionContext::serial(),
        ServerConfig {
            max_pipeline: 2,
            workers: 1,
            inline_fast_path: false,
            ..ServerConfig::default()
        },
    );

    let mut stream = TcpStream::connect(addr).unwrap();
    write_frame(
        &mut stream,
        &Request::Hello {
            max_version: PROTOCOL_V2,
            pipe_size: 8,
        }
        .encode(),
    )
    .unwrap();
    let ack = read_frame(&mut stream).unwrap().expect("HelloAck frame");
    match Response::decode(&ack).unwrap() {
        Response::HelloAck {
            version, pipe_size, ..
        } => {
            assert_eq!(version, PROTOCOL_V2);
            assert_eq!(pipe_size, 2, "requested 8, server cap is 2");
        }
        other => panic!("expected HelloAck, got {other:?}"),
    }

    // Eight heavy requests back to back: the first two are admitted (cap
    // 2), the other six must be rejected before execution.
    let body = heavy_count("inde").encode();
    for id in 1..=8u64 {
        let header = FrameHeader {
            request_id: id,
            deadline_ms: 0,
        };
        write_frame(&mut stream, &header.with_body(&body)).unwrap();
    }

    let (mut admitted, mut rejected) = (0, 0);
    for _ in 0..8 {
        let payload = read_frame(&mut stream).unwrap().expect("response frame");
        let (header, body) = FrameHeader::split(&payload).unwrap();
        match Response::decode(body).unwrap() {
            Response::Counts(counts) => {
                assert_eq!(counts.len(), HEAVY_PROBES);
                admitted += 1;
            }
            Response::Overloaded { in_flight, limit } => {
                assert_eq!((in_flight, limit), (2, 2), "request {}", header.request_id);
                rejected += 1;
            }
            other => panic!("request {}: unexpected {other:?}", header.request_id),
        }
    }
    assert_eq!((admitted, rejected), (2, 6));

    // The connection shrugged it off.
    let header = FrameHeader {
        request_id: 99,
        deadline_ms: 0,
    };
    write_frame(&mut stream, &header.with_body(&Request::Ping.encode())).unwrap();
    let payload = read_frame(&mut stream).unwrap().expect("pong frame");
    let (header, body) = FrameHeader::split(&payload).unwrap();
    assert_eq!(header.request_id, 99);
    assert!(matches!(Response::decode(body).unwrap(), Response::Pong));

    let mut observer = Client::connect(addr).unwrap();
    let report = observer.stats().unwrap();
    assert_eq!(report.rejected, 6);
    assert_eq!(report.timeouts, 0);
    handle.shutdown();
}

/// `Stats` answers with live flow-control state: the stats request itself
/// is in flight while it is being answered, and its connection shows up in
/// the per-connection queue depths.
#[test]
fn stats_reports_in_flight_and_queue_depths() {
    let (handle, addr) = spawn_server(ExecutionContext::serial(), queued_config());
    let mut client = Client::connect(addr).unwrap();
    let report = client.stats().unwrap();
    assert!(report.in_flight >= 1, "stats call counts itself in flight");
    assert!(
        report.conn_queue_depths.iter().sum::<u32>() >= 1,
        "this connection's queue depth includes the stats call: {:?}",
        report.conn_queue_depths
    );
    handle.shutdown();
}

/// Graceful shutdown: admitted requests are drained and answered; only then
/// does the connection close.
#[test]
fn graceful_shutdown_drains_admitted_requests() {
    let (handle, addr) = spawn_server(ExecutionContext::serial(), queued_config());

    let mut client = PipelinedClient::connect(addr, 8).unwrap();
    let ids: Vec<u64> = (0..3)
        .map(|_| client.submit(&heavy_count("inde")).unwrap())
        .collect();
    client.flush().unwrap();
    // Give the server time to read and admit all three before the drain
    // begins (the loop parses within microseconds of the flush).
    std::thread::sleep(Duration::from_millis(30));

    let drainer = std::thread::spawn(move || handle.shutdown());
    for id in ids {
        assert!(
            matches!(client.recv(id).unwrap(), Response::Counts(_)),
            "admitted request {id} must be answered during the drain"
        );
    }
    drainer.join().unwrap();

    // After the drain the server is gone: the next call fails typed.
    let err = client.call(&Request::Ping).unwrap_err();
    assert!(
        matches!(err, ClientError::ConnectionClosed),
        "expected ConnectionClosed after drain, got {err:?}"
    );
}

/// Satellite regression: killing the server mid-batch surfaces as the typed
/// `ConnectionClosed` on a pipelined connection — not a panic, not an
/// opaque i/o error.
#[test]
fn abort_mid_pipeline_is_typed_connection_closed() {
    let (handle, addr) = spawn_server(ExecutionContext::serial(), queued_config());

    let mut client = PipelinedClient::connect(addr, 8).unwrap();
    // The first request is big enough that the single worker cannot finish
    // it before the abort fires even in release builds, so the requests
    // queued behind it are deterministically cut short.
    let mut ids = vec![client
        .submit(&heavy_count_n("inde", 64 * HEAVY_PROBES))
        .unwrap()];
    ids.extend((0..3).map(|_| client.submit(&heavy_count("inde")).unwrap()));
    client.flush().unwrap();
    std::thread::sleep(Duration::from_millis(20));
    handle.abort();

    let mut closed = 0;
    for id in ids {
        match client.recv(id) {
            Ok(Response::Counts(_)) => {} // raced ahead of the abort
            Err(ClientError::ConnectionClosed) => closed += 1,
            other => panic!("expected Counts or ConnectionClosed, got {other:?}"),
        }
    }
    assert!(closed >= 1, "the abort must cut at least one request short");
}

/// The same regression through the blocking client (the original
/// mid-batch-death repro): `count_batch` against a dead server returns
/// `ConnectionClosed`.  `abort()` joins the loop thread (sockets closed on
/// return), so issuing the call afterwards is deterministic in both debug
/// and release — the genuinely mid-flight race is covered by
/// `abort_mid_pipeline_is_typed_connection_closed` above.
#[test]
fn abort_mid_blocking_call_is_typed_connection_closed() {
    let (handle, addr) = spawn_server(ExecutionContext::serial(), queued_config());

    let mut client = Client::connect(addr).unwrap();
    handle.abort();
    let boxes = vec![WeightRatioBox::uniform(3, 0.01, 100.0).unwrap(); HEAVY_PROBES];
    let err = client.count_batch("inde", &boxes).unwrap_err();
    assert!(
        matches!(err, ClientError::ConnectionClosed),
        "expected ConnectionClosed, got {err:?}"
    );
}
