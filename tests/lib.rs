//! Shared helpers for the cross-crate integration tests. The real test
//! content lives in the sibling `*.rs` integration-test targets.
