//! Helpers shared by the integration-test suites.
//!
//! Lives in `tests/common/` (not `tests/*.rs`) so Cargo treats it as a
//! module to include from each suite rather than compiling it as its own
//! empty integration-test crate.

// Each suite compiles its own copy of this module and uses a subset of it.
#![allow(dead_code)]

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use eclipse_core::Point;

/// Polls `cond` every 10 ms until it holds or `timeout` elapses; returns
/// whether it held.  Use this instead of bare sleeps: a passing run costs
/// one poll interval, not the worst-case pause, and a hung condition fails
/// with a bounded wait instead of wedging the suite.
pub fn wait_until(mut cond: impl FnMut() -> bool, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if cond() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The four-hotel dataset of the paper's running example (Figures 1–3):
/// (distance in miles, price in $100), smaller is better.
pub fn paper_hotels() -> Vec<Point> {
    vec![
        Point::new(vec![1.0, 6.0]), // p1
        Point::new(vec![4.0, 4.0]), // p2
        Point::new(vec![6.0, 1.0]), // p3
        Point::new(vec![8.0, 5.0]), // p4
    ]
}

/// A path in the system temp dir that is unique to this process (so
/// concurrent test runs cannot collide on fixture files) and is removed
/// when the value is dropped, even if the owning test panics.
pub struct TempPath {
    path: PathBuf,
}

impl TempPath {
    /// A fresh temp path for fixture `name`, suffixed with the process id.
    pub fn new(name: &str) -> Self {
        let mut path = std::env::temp_dir();
        path.push(format!("eclipse_e2e_{}_{name}", std::process::id()));
        TempPath { path }
    }

    /// The underlying filesystem path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// A directory in the system temp dir that is unique to this process and is
/// removed (recursively) when the value is dropped, even if the owning test
/// panics — the snapshot suites use one per server lifetime.
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// A fresh temp directory for fixture `name`, suffixed with the process
    /// id; created eagerly.
    pub fn new(name: &str) -> Self {
        let mut path = std::env::temp_dir();
        path.push(format!("eclipse_e2e_dir_{}_{name}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The underlying directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}
