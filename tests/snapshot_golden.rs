//! Golden-file suite for the snapshot format: small committed snapshot
//! fixtures (per index backend, 2-D and 3-D) pin the byte-exact encoding
//! across PRs, and decoding each fixture must answer queries identically to
//! an index rebuilt from scratch.
//!
//! If the format changes **deliberately** (bump
//! [`eclipse_persist::FORMAT_VERSION`] and document the change in the README
//! compatibility policy), regenerate the fixtures with:
//!
//! ```text
//! ECLIPSE_UPDATE_FIXTURES=1 cargo test -p eclipse-examples --test snapshot_golden
//! ```

mod common;

use std::path::PathBuf;

use common::paper_hotels;
use eclipse_core::index::IntersectionIndexKind;
use eclipse_core::{EclipseEngine, Point, WeightRatioBox};
use rand::{Rng, SeedableRng};

/// A deterministic 12-point 3-D dataset (fixed seed, vendored RNG), small
/// enough that its snapshots stay a few KiB in the repository.
fn inde3d() -> Vec<Point> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(20210614);
    (0..12)
        .map(|_| Point::new((0..3).map(|_| rng.gen_range(0.0..1.0)).collect()))
        .collect()
}

/// The fixture matrix: label, dataset, backend kind, fixture file name.
fn cases() -> Vec<(
    &'static str,
    Vec<Point>,
    IntersectionIndexKind,
    &'static str,
)> {
    vec![
        (
            "hotels",
            paper_hotels(),
            IntersectionIndexKind::Quadtree,
            "hotels-2d-quad.eclsnap",
        ),
        (
            "hotels",
            paper_hotels(),
            IntersectionIndexKind::CuttingTree,
            "hotels-2d-cutting.eclsnap",
        ),
        (
            "inde",
            inde3d(),
            IntersectionIndexKind::Quadtree,
            "inde-3d-quad.eclsnap",
        ),
        (
            "inde",
            inde3d(),
            IntersectionIndexKind::CuttingTree,
            "inde-3d-cutting.eclsnap",
        ),
    ]
}

fn fixture_path(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(file)
}

fn probe_boxes(dim: usize) -> Vec<WeightRatioBox> {
    [(0.25, 2.0), (0.36, 2.75), (1.0, 1.0), (0.5, 20.0)]
        .into_iter()
        .map(|(lo, hi)| WeightRatioBox::uniform(dim, lo, hi).unwrap())
        .collect()
}

/// Encoding is pinned byte-for-byte by the committed fixtures: any change to
/// the container layout, a section payload, index construction or the
/// underlying float semantics fails this test loudly instead of silently
/// orphaning every snapshot in the field.
#[test]
fn encode_is_byte_identical_to_the_committed_fixtures() {
    let update = std::env::var_os("ECLIPSE_UPDATE_FIXTURES").is_some();
    for (label, points, kind, file) in cases() {
        let engine = EclipseEngine::new(points).unwrap();
        let bytes = engine.save_snapshot(label, kind).unwrap();
        let path = fixture_path(file);
        if update {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &bytes).unwrap();
            continue;
        }
        let golden = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
        assert_eq!(
            bytes, golden,
            "snapshot encoding of {label}/{kind:?} no longer matches {file}; if this is a \
             deliberate format change, bump FORMAT_VERSION and regenerate with \
             ECLIPSE_UPDATE_FIXTURES=1"
        );
    }
}

/// Decoding a committed fixture yields an engine that answers every probe —
/// ids and counts, inside and outside the indexed region — identically to an
/// engine rebuilt from the raw points.
#[test]
fn decoded_fixtures_answer_identically_to_fresh_rebuilds() {
    for (label, points, kind, file) in cases() {
        let golden = std::fs::read(fixture_path(file))
            .unwrap_or_else(|e| panic!("fixture {file} unreadable: {e}"));
        let (stored_label, restored) = EclipseEngine::from_snapshot(&golden).unwrap();
        assert_eq!(stored_label, label);
        assert!(restored.cached_index(kind).is_some(), "{file} warm-loads");

        let rebuilt = EclipseEngine::new(points).unwrap();
        rebuilt.build_index(kind).unwrap();
        assert_eq!(restored.len(), rebuilt.len());
        assert_eq!(restored.dim(), rebuilt.dim());
        for b in probe_boxes(rebuilt.dim()) {
            assert_eq!(
                restored.eclipse(&b).unwrap(),
                rebuilt.eclipse(&b).unwrap(),
                "{file}, box {b}"
            );
        }
        // The fixture also restores into an engine already holding the same
        // dataset (the serve-layer warm path).
        let warm = EclipseEngine::new(rebuilt.points().to_vec()).unwrap();
        warm.restore_index_snapshot(&golden).unwrap();
        let b = probe_boxes(rebuilt.dim()).remove(0);
        assert_eq!(warm.eclipse(&b).unwrap(), rebuilt.eclipse(&b).unwrap());
    }
}

/// Format v1 snapshots (no split/cut strategy tags; trees built with the
/// legacy midpoint / sampled-crossings rules) must keep decoding: the
/// committed `*-v1.eclsnap` copies are frozen forever and every probe must
/// answer identically to a fresh rebuild.  Re-encoding a v1 snapshot writes
/// the current format, so the upgrade must round-trip too.
#[test]
fn v1_fixtures_still_decode_probe_and_upgrade() {
    for (label, points, kind, file) in cases() {
        let v1_file = file.replace(".eclsnap", "-v1.eclsnap");
        let golden = std::fs::read(fixture_path(&v1_file))
            .unwrap_or_else(|e| panic!("fixture {v1_file} unreadable: {e}"));
        let (stored_label, restored) = EclipseEngine::from_snapshot(&golden).unwrap();
        assert_eq!(stored_label, label);
        assert!(
            restored.cached_index(kind).is_some(),
            "{v1_file} warm-loads"
        );

        let rebuilt = EclipseEngine::new(points).unwrap();
        rebuilt.build_index(kind).unwrap();
        for b in probe_boxes(rebuilt.dim()) {
            assert_eq!(
                restored.eclipse(&b).unwrap(),
                rebuilt.eclipse(&b).unwrap(),
                "{v1_file}, box {b}"
            );
        }

        // Upgrade path: re-encoding writes the current version and the
        // upgraded snapshot answers exactly like the original.
        let upgraded = restored.save_snapshot(&stored_label, kind).unwrap();
        assert_ne!(
            upgraded, golden,
            "{v1_file} should re-encode as the current format"
        );
        let (_, reopened) = EclipseEngine::from_snapshot(&upgraded).unwrap();
        for b in probe_boxes(rebuilt.dim()) {
            assert_eq!(
                reopened.eclipse(&b).unwrap(),
                restored.eclipse(&b).unwrap(),
                "upgraded {v1_file}, box {b}"
            );
        }
    }
}

/// The fixtures themselves re-encode byte-exactly after a decode cycle —
/// decode → encode is the identity on the on-disk representation.
#[test]
fn fixtures_re_encode_byte_exactly() {
    for (label, _points, kind, file) in cases() {
        let golden = std::fs::read(fixture_path(file))
            .unwrap_or_else(|e| panic!("fixture {file} unreadable: {e}"));
        let (stored_label, restored) = EclipseEngine::from_snapshot(&golden).unwrap();
        assert_eq!(restored.save_snapshot(&stored_label, kind).unwrap(), golden);
        assert_eq!(stored_label, label);
    }
}
