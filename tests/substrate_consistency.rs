//! Cross-crate consistency of the substrates: the skyline algorithms agree
//! with each other, the spatial indexes agree with brute force, kNN engines
//! agree, and the geometry primitives compose correctly with the core
//! operator.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};

use eclipse_geom::cutting::{CuttingTree, CuttingTreeConfig};
use eclipse_geom::dual::score_difference_hyperplane;
use eclipse_geom::hyperplane::Hyperplane;
use eclipse_geom::point::{BoundingBox, Point};
use eclipse_geom::quadtree::{HyperplaneQuadtree, QuadtreeConfig};
use eclipse_geom::rtree::RTree;
use eclipse_skyline::dominance::skyline_naive;
use eclipse_skyline::{skyline_bnl, skyline_dc, skyline_sfs};

fn random_points(n: usize, d: usize, seed: u64) -> Vec<Point> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new((0..d).map(|_| rng.gen_range(0.0..1.0)).collect()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// All four skyline implementations return identical results.
    #[test]
    fn prop_skyline_algorithms_agree(seed in 0u64..10_000, n in 0usize..250, d in 1usize..6) {
        let pts = random_points(n, d, seed);
        let naive = skyline_naive(&pts);
        prop_assert_eq!(&skyline_bnl(&pts), &naive);
        prop_assert_eq!(&skyline_sfs(&pts), &naive);
        prop_assert_eq!(&skyline_dc(&pts), &naive);
    }

    /// Quadtree and cutting tree report exactly the hyperplanes crossing a box.
    #[test]
    fn prop_intersection_indexes_are_exact(
        seed in 0u64..10_000,
        n in 0usize..150,
        k in 1usize..4,
        qlo in 0.0f64..0.8,
        qsize in 0.01f64..0.3,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let planes: Vec<Hyperplane> = (0..n)
            .map(|_| {
                Hyperplane::new(
                    (0..k).map(|_| rng.gen_range(-1.0..1.0)).collect(),
                    rng.gen_range(-1.0..1.0),
                )
            })
            .collect();
        let root = BoundingBox::new(vec![0.0; k], vec![1.0; k]);
        let query = BoundingBox::new(vec![qlo; k], vec![(qlo + qsize).min(1.0); k]);
        let expected: Vec<usize> = (0..planes.len())
            .filter(|&i| planes[i].intersects_box(&query))
            .collect();
        let quad = HyperplaneQuadtree::build(&planes, root.clone(), QuadtreeConfig::default());
        let cut = CuttingTree::build(&planes, root, CuttingTreeConfig::default());
        prop_assert_eq!(quad.query(&planes, &query), expected.clone());
        prop_assert_eq!(cut.query(&planes, &query), expected);
    }

    /// R-tree range queries and kNN agree with linear scans.
    #[test]
    fn prop_rtree_agrees_with_linear_scan(
        seed in 0u64..10_000,
        n in 0usize..300,
        d in 1usize..5,
        k in 0usize..12,
    ) {
        let pts = random_points(n, d, seed);
        let tree = RTree::bulk_load(&pts);
        let query = Point::new(vec![0.5; d]);
        let got = tree.knn(&pts, &query, k);
        let mut expected: Vec<(usize, f64)> = (0..pts.len())
            .map(|i| (i, pts[i].l2_distance(&query)))
            .collect();
        expected.sort_by(|a, b| a.1.total_cmp(&b.1));
        expected.truncate(k);
        prop_assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(expected.iter()) {
            prop_assert!((g.1 - e.1).abs() < 1e-9);
        }
    }

    /// The score-difference hyperplane evaluates to the actual score difference.
    #[test]
    fn prop_score_difference_hyperplane_is_score_difference(
        seed in 0u64..10_000,
        d in 2usize..6,
        r in proptest::collection::vec(0.01f64..5.0, 1..5),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Point::new((0..d).map(|_| rng.gen_range(0.0..1.0)).collect());
        let b = Point::new((0..d).map(|_| rng.gen_range(0.0..1.0)).collect());
        let h = score_difference_hyperplane(&a, &b);
        let ratios: Vec<f64> = r.iter().copied().cycle().take(d - 1).collect();
        let expected = eclipse_geom::dual::score(&a, &ratios) - eclipse_geom::dual::score(&b, &ratios);
        prop_assert!((h.eval(&ratios) - expected).abs() < 1e-9);
    }
}

#[test]
fn dual_space_ordering_matches_primal_scores() {
    // For any abscissa x = −r, the order of dual-line values (closeness to the
    // x-axis) matches the order of primal scores — the fact §IV-A relies on.
    let pts = random_points(50, 2, 7);
    let lines: Vec<eclipse_geom::hyperplane::DualLine> = pts
        .iter()
        .map(eclipse_geom::hyperplane::DualLine::from_point)
        .collect();
    for r in [0.25, 0.5, 1.0, 2.0, 4.0] {
        for i in 0..pts.len() {
            for j in 0..pts.len() {
                let si = pts[i].weighted_sum(&[r, 1.0]);
                let sj = pts[j].weighted_sum(&[r, 1.0]);
                let vi = lines[i].value_at(-r);
                let vj = lines[j].value_at(-r);
                // Smaller score ⇔ dual value closer to zero (less negative).
                assert_eq!(si < sj, vi > vj, "r = {r}, i = {i}, j = {j}");
            }
        }
    }
}

#[test]
fn hull_membership_consistent_between_lp_and_2d_chain() {
    for seed in [3u64, 5, 8, 13] {
        let pts = random_points(80, 2, seed);
        assert_eq!(
            eclipse_skyline::hull::hull_query_2d(&pts),
            eclipse_skyline::hull::hull_query_lp(&pts),
            "seed {seed}"
        );
    }
}

#[test]
fn skyline_of_nba_and_synthetic_families_is_consistent_across_algorithms() {
    let nba = eclipse_data::nba::nba_dataset(600, 4, 77);
    assert_eq!(skyline_bnl(&nba), skyline_dc(&nba));
    assert_eq!(skyline_sfs(&nba), skyline_dc(&nba));
    for dist in [
        eclipse_data::synthetic::Distribution::Correlated,
        eclipse_data::synthetic::Distribution::AntiCorrelated,
        eclipse_data::synthetic::Distribution::ClusteredWorstCase,
    ] {
        let pts = eclipse_data::synthetic::SyntheticConfig::new(400, 3, dist, 13).generate();
        assert_eq!(skyline_bnl(&pts), skyline_dc(&pts), "{dist:?}");
    }
}
