//! Property-based tests of the eclipse operator's *semantic* claims
//! (§II of the paper): its relationship to 1NN, skyline and the convex hull
//! query, monotonicity in the ratio box, and the dominance properties.

use proptest::prelude::*;

use eclipse_core::algo::transform::{eclipse_transform, SkylineBackend};
use eclipse_core::dominance::{eclipse_dominates, skyline_dominates};
use eclipse_core::point::Point;
use eclipse_core::weights::WeightRatioBox;
use eclipse_data::synthetic::{Distribution, SyntheticConfig};
use eclipse_skyline::hull::hull_query_lp;
use eclipse_skyline::knn::{nn_linear, ratio_to_weights};

fn eclipse(points: &[Point], b: &WeightRatioBox) -> Vec<usize> {
    eclipse_transform(points, b, SkylineBackend::Auto).expect("finite box")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Eclipse is always a subset of the skyline, and never empty.
    #[test]
    fn prop_eclipse_subset_of_skyline(
        seed in 0u64..10_000,
        n in 1usize..200,
        d in 2usize..5,
        lo in 0.05f64..2.0,
        width in 0.0f64..4.0,
    ) {
        let pts = SyntheticConfig::new(n, d, Distribution::Independent, seed).generate();
        let b = WeightRatioBox::uniform(d, lo, lo + width).unwrap();
        let e = eclipse(&pts, &b);
        let s: std::collections::HashSet<usize> =
            eclipse_skyline::dc::skyline_dc(&pts).into_iter().collect();
        prop_assert!(!e.is_empty());
        prop_assert!(e.iter().all(|i| s.contains(i)));
    }

    /// The 1NN winner for any ratio vector inside the box is an eclipse point.
    #[test]
    fn prop_nn_winner_is_an_eclipse_point(
        seed in 0u64..10_000,
        n in 1usize..200,
        d in 2usize..5,
        lo in 0.05f64..2.0,
        width in 0.01f64..3.0,
        t in 0.0f64..1.0,
    ) {
        let pts = SyntheticConfig::new(n, d, Distribution::Independent, seed).generate();
        let b = WeightRatioBox::uniform(d, lo, lo + width).unwrap();
        let e = eclipse(&pts, &b);
        // A ratio vector inside the box (same value on every dimension).
        let r = vec![lo + t * width; d - 1];
        let winner = nn_linear(&pts, &ratio_to_weights(&r)).unwrap();
        prop_assert!(
            e.contains(&winner.index),
            "winner {} for r = {:?} missing from eclipse {:?}",
            winner.index, r, e
        );
    }

    /// Widening the ratio box never removes eclipse points (monotonicity).
    #[test]
    fn prop_wider_boxes_grow_the_result(
        seed in 0u64..10_000,
        n in 1usize..150,
        d in 2usize..4,
        lo in 0.2f64..1.5,
        width in 0.0f64..1.0,
        extra in 0.01f64..2.0,
    ) {
        let pts = SyntheticConfig::new(n, d, Distribution::Independent, seed).generate();
        let narrow = WeightRatioBox::uniform(d, lo, lo + width).unwrap();
        let wide = WeightRatioBox::uniform(d, (lo - extra).max(0.01), lo + width + extra).unwrap();
        let narrow_res: std::collections::HashSet<usize> = eclipse(&pts, &narrow).into_iter().collect();
        let wide_res: std::collections::HashSet<usize> = eclipse(&pts, &wide).into_iter().collect();
        prop_assert!(narrow_res.is_subset(&wide_res));
    }

    /// Dominance is asymmetric and implied by skyline dominance (Properties 1 & 3).
    #[test]
    fn prop_dominance_properties(
        seed in 0u64..10_000,
        d in 2usize..5,
        lo in 0.05f64..2.0,
        width in 0.0f64..3.0,
    ) {
        let pts = SyntheticConfig::new(40, d, Distribution::Independent, seed).generate();
        let b = WeightRatioBox::uniform(d, lo, lo + width).unwrap();
        for i in 0..pts.len() {
            for j in 0..pts.len() {
                if i == j { continue; }
                if eclipse_dominates(&pts[i], &pts[j], &b) {
                    prop_assert!(!eclipse_dominates(&pts[j], &pts[i], &b));
                }
                if skyline_dominates(&pts[i], &pts[j]) {
                    prop_assert!(eclipse_dominates(&pts[i], &pts[j], &b));
                }
            }
        }
    }

    /// A degenerate box `[l, l]` returns exactly the minimum-score points.
    #[test]
    fn prop_exact_box_is_argmin(
        seed in 0u64..10_000,
        n in 1usize..200,
        d in 2usize..5,
        r in 0.05f64..3.0,
    ) {
        let pts = SyntheticConfig::new(n, d, Distribution::Independent, seed).generate();
        let b = WeightRatioBox::uniform(d, r, r).unwrap();
        let e = eclipse(&pts, &b);
        let ratios = vec![r; d - 1];
        let scores: Vec<f64> = pts
            .iter()
            .map(|p| eclipse_core::score::score_with_ratios(p, &ratios))
            .collect();
        let min = scores.iter().cloned().fold(f64::INFINITY, f64::min);
        // The result is exactly the set of minimum-score points; to stay
        // robust against last-bit rounding differences between the mapped
        // coordinates and the direct scores, assert set membership with a
        // small tolerance rather than bit-exact equality.
        prop_assert!(!e.is_empty());
        prop_assert!(
            e.iter().all(|&i| scores[i] <= min + 1e-9),
            "non-minimal point in exact-box eclipse result"
        );
        let strict_argmin_count = scores.iter().filter(|s| **s <= min + 1e-12).count();
        prop_assert!(e.len() <= strict_argmin_count.max(1) + 1);
    }
}

#[test]
fn hull_is_subset_of_eclipse_for_wide_boxes() {
    // With a very wide finite box the eclipse result contains every
    // convex-hull-query point whose optimal weight ratio falls inside the box.
    for seed in [1u64, 2, 3] {
        let pts = SyntheticConfig::new(150, 3, Distribution::Independent, seed).generate();
        let b = WeightRatioBox::uniform(3, 1e-4, 1e4).unwrap();
        let e: std::collections::HashSet<usize> = eclipse(&pts, &b).into_iter().collect();
        let skyline: std::collections::HashSet<usize> =
            eclipse_skyline::dc::skyline_dc(&pts).into_iter().collect();
        for h in hull_query_lp(&pts) {
            assert!(
                skyline.contains(&h),
                "hull ⊆ skyline violated (seed {seed})"
            );
            assert!(
                e.contains(&h),
                "hull point {h} missing from wide eclipse (seed {seed})"
            );
        }
    }
}

#[test]
fn paper_table1_summary_holds_on_running_example() {
    let pts = vec![
        Point::new(vec![1.0, 6.0]),
        Point::new(vec![4.0, 4.0]),
        Point::new(vec![6.0, 1.0]),
        Point::new(vec![8.0, 5.0]),
    ];
    // 1NN: flat angle (exact ratio); skyline: right angle (unbounded range);
    // eclipse: obtuse angle (finite range) — Table I.
    let nn = eclipse(&pts, &WeightRatioBox::exact(&[2.0]).unwrap());
    let ecl = eclipse(&pts, &WeightRatioBox::uniform(2, 0.25, 2.0).unwrap());
    let sky = eclipse_skyline::dc::skyline_dc(&pts);
    assert_eq!(nn, vec![0]);
    assert_eq!(ecl, vec![0, 1, 2]);
    assert_eq!(sky, vec![0, 1, 2]);
    assert!(nn.len() <= ecl.len() && ecl.len() <= sky.len());
}
