//! Cross-crate, cross-algorithm equivalence: BASE ≡ TRAN ≡ QUAD ≡ CUTTING on
//! every dataset family, dimensionality and ratio range of the paper's
//! parameter grid — including property-based tests over random datasets and
//! random boxes.

use proptest::prelude::*;

use eclipse_core::algo::baseline::eclipse_baseline;
use eclipse_core::algo::transform::{eclipse_transform, SkylineBackend};
use eclipse_core::index::{EclipseIndex, IndexConfig, IntersectionIndexKind};
use eclipse_core::point::Point;
use eclipse_core::weights::WeightRatioBox;
use eclipse_data::synthetic::{Distribution, SyntheticConfig};

fn all_four(points: &[Point], b: &WeightRatioBox) -> [Vec<usize>; 4] {
    let base = eclipse_baseline(points, b).expect("baseline");
    let tran = eclipse_transform(points, b, SkylineBackend::Auto).expect("transform");
    let quad = EclipseIndex::build(
        points,
        IndexConfig::with_kind(IntersectionIndexKind::Quadtree),
    )
    .expect("quad build")
    .query(b)
    .expect("quad query");
    let cutting = EclipseIndex::build(
        points,
        IndexConfig::with_kind(IntersectionIndexKind::CuttingTree),
    )
    .expect("cutting build")
    .query(b)
    .expect("cutting query");
    [base, tran, quad, cutting]
}

#[test]
fn equivalence_on_paper_parameter_grid() {
    // A reduced version of Table IV's grid (kept quadratic-baseline friendly).
    for dist in [
        Distribution::Independent,
        Distribution::Correlated,
        Distribution::AntiCorrelated,
    ] {
        for d in [2usize, 3, 4] {
            for (lo, hi) in [(0.18, 5.67), (0.36, 2.75), (0.84, 1.19)] {
                let pts = SyntheticConfig::new(300, d, dist, 99).generate();
                let b = WeightRatioBox::uniform(d, lo, hi).unwrap();
                let [base, tran, quad, cutting] = all_four(&pts, &b);
                assert_eq!(base, tran, "{dist:?} d={d} r=[{lo},{hi}] TRAN");
                assert_eq!(base, quad, "{dist:?} d={d} r=[{lo},{hi}] QUAD");
                assert_eq!(base, cutting, "{dist:?} d={d} r=[{lo},{hi}] CUTTING");
                assert!(!base.is_empty(), "eclipse result must never be empty");
            }
        }
    }
}

#[test]
fn equivalence_on_nba_dataset() {
    let pts = eclipse_data::nba::nba_dataset(800, 3, 2015);
    let b = WeightRatioBox::uniform(3, 0.36, 2.75).unwrap();
    let [base, tran, quad, cutting] = all_four(&pts, &b);
    assert_eq!(base, tran);
    assert_eq!(base, quad);
    assert_eq!(base, cutting);
}

#[test]
fn equivalence_on_clustered_worst_case() {
    let pts = SyntheticConfig::new(200, 3, Distribution::ClusteredWorstCase, 5).generate();
    let b = WeightRatioBox::uniform(3, 0.36, 2.75).unwrap();
    let [base, tran, quad, cutting] = all_four(&pts, &b);
    assert_eq!(base, tran);
    assert_eq!(base, quad);
    assert_eq!(base, cutting);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random datasets, dimensionalities and uniform ratio boxes.
    #[test]
    fn prop_equivalence_uniform_boxes(
        seed in 0u64..10_000,
        n in 5usize..120,
        d in 2usize..5,
        lo in 0.05f64..2.0,
        width in 0.0f64..4.0,
    ) {
        let pts = SyntheticConfig::new(n, d, Distribution::Independent, seed).generate();
        let b = WeightRatioBox::uniform(d, lo, lo + width).unwrap();
        let [base, tran, quad, cutting] = all_four(&pts, &b);
        prop_assert_eq!(&base, &tran);
        prop_assert_eq!(&base, &quad);
        prop_assert_eq!(&base, &cutting);
    }

    /// Random per-dimension (asymmetric) ratio ranges.
    #[test]
    fn prop_equivalence_asymmetric_boxes(
        seed in 0u64..10_000,
        n in 5usize..100,
        bounds in proptest::collection::vec((0.05f64..2.0, 0.0f64..3.0), 2..4),
    ) {
        let d = bounds.len() + 1;
        let pts = SyntheticConfig::new(n, d, Distribution::Independent, seed).generate();
        let ranges: Vec<(f64, f64)> = bounds.iter().map(|&(lo, w)| (lo, lo + w)).collect();
        let b = WeightRatioBox::from_bounds(&ranges).unwrap();
        let [base, tran, quad, cutting] = all_four(&pts, &b);
        prop_assert_eq!(&base, &tran);
        prop_assert_eq!(&base, &quad);
        prop_assert_eq!(&base, &cutting);
    }

    /// Tie-heavy datasets (small integer grids) with duplicates.
    #[test]
    fn prop_equivalence_on_grid_data(
        seed in 0u64..10_000,
        n in 5usize..150,
        d in 2usize..4,
        lo in 0.1f64..1.5,
        width in 0.0f64..2.0,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let pts: Vec<Point> = (0..n)
            .map(|_| Point::new((0..d).map(|_| rng.gen_range(0..4) as f64).collect()))
            .collect();
        let b = WeightRatioBox::uniform(d, lo, lo + width).unwrap();
        let [base, tran, quad, cutting] = all_four(&pts, &b);
        prop_assert_eq!(&base, &tran);
        prop_assert_eq!(&base, &quad);
        prop_assert_eq!(&base, &cutting);
    }
}
