//! Socket-timeout regression tests: clients must fail fast against a peer
//! that accepts connections but never replies, and the server must reap
//! accepted connections that never send a first frame (half-open hygiene)
//! without ever reaping an established connection.

mod common;

use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use common::wait_until;
use eclipse_core::exec::ExecutionContext;
use eclipse_serve::client::{Client, ClientError, PipelinedClient};
use eclipse_serve::server::{Server, ServerConfig};

#[test]
fn clients_time_out_against_an_accepting_but_silent_peer() {
    // A listener whose backlog completes TCP handshakes but that never
    // reads or writes: connects succeed, replies never come.
    let silent = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = silent.local_addr().unwrap();

    // Plain client: connect succeeds, the read times out as a typed error.
    let started = Instant::now();
    let mut client = Client::connect_timeout(addr, Duration::from_millis(500)).unwrap();
    client
        .set_io_timeout(Some(Duration::from_millis(200)))
        .unwrap();
    match client.ping() {
        Err(ClientError::SocketTimeout) => {}
        other => panic!("expected SocketTimeout, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "a silent peer must not hang the client: {:?}",
        started.elapsed()
    );

    // Pipelined client: the Hello handshake itself is covered by the
    // timeout, so even connection setup cannot hang.
    let started = Instant::now();
    match PipelinedClient::connect_timeout(addr, 8, Duration::from_millis(200)) {
        Err(ClientError::SocketTimeout) => {}
        other => panic!("expected SocketTimeout from the handshake, got {other:?}"),
    }
    assert!(started.elapsed() < Duration::from_secs(5));
}

#[test]
fn first_frame_less_connections_are_reaped_but_established_ones_are_not() {
    let config = ServerConfig {
        idle_timeout: Some(Duration::from_millis(200)),
        ..ServerConfig::default()
    };
    let handle = Server::bind_with_config("127.0.0.1:0", ExecutionContext::serial(), config)
        .unwrap()
        .spawn()
        .unwrap();

    // An established connection (one that sent its first frame) lives far
    // beyond the idle window.
    let mut established = Client::connect(handle.addr()).unwrap();
    established.ping().unwrap();

    // A connection that never sends anything is reaped: the server closes
    // it and our read observes EOF.
    let mut idle = TcpStream::connect(handle.addr()).unwrap();
    idle.set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    let reaped = wait_until(
        || {
            let mut buf = [0u8; 16];
            matches!(idle.read(&mut buf), Ok(0))
        },
        Duration::from_secs(5),
    );
    assert!(reaped, "a first-frame-less connection was never reaped");

    // Well past the idle window, the established connection still answers.
    std::thread::sleep(Duration::from_millis(400));
    established.ping().unwrap();
    handle.shutdown();
}
