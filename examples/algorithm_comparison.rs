//! Algorithm comparison: run BASE, TRAN, QUAD and CUTTING on the same
//! workload, verify they agree, and print a small timing table — a miniature,
//! human-readable version of the paper's Figure 10 experiment.
//!
//! ```text
//! cargo run --release -p eclipse-examples --bin algorithm_comparison [n] [d]
//! ```

use std::time::Instant;

use eclipse_core::query::Algorithm;
use eclipse_core::{EclipseEngine, WeightRatioBox};
use eclipse_data::synthetic::{Distribution, SyntheticConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2048);
    let d: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);

    println!("workload: INDE, n = {n}, d = {d}, r[j] ∈ [0.36, 2.75]\n");
    let points = SyntheticConfig::new(n, d, Distribution::Independent, 42).generate();
    let engine = EclipseEngine::new(points)?;
    let ratio_box = WeightRatioBox::uniform(d, 0.36, 2.75)?;

    let algorithms = [
        ("BASE   (Algorithm 1)", Algorithm::Baseline),
        ("TRAN   (Algorithms 2-3)", Algorithm::Transform),
        ("QUAD   (index, line quadtree)", Algorithm::IndexQuadtree),
        ("CUTTING(index, cutting tree)", Algorithm::IndexCuttingTree),
    ];

    let mut reference: Option<Vec<usize>> = None;
    println!("{:<32} {:>12} {:>10}", "algorithm", "time", "results");
    println!("{}", "-".repeat(58));
    for (label, alg) in algorithms {
        let start = Instant::now();
        let result = engine.eclipse_with(&ratio_box, alg)?;
        let elapsed = start.elapsed();
        println!("{label:<32} {elapsed:>12.2?} {:>10}", result.len());
        match &reference {
            None => reference = Some(result),
            Some(expected) => assert_eq!(&result, expected, "{label} disagrees with BASE"),
        }
    }
    println!(
        "\nall four algorithms returned the same {} eclipse points ✓",
        reference.unwrap().len()
    );

    // Index reuse: the second query on a built index is much cheaper than the
    // first call that had to build it.
    let narrow = WeightRatioBox::uniform(d, 0.84, 1.19)?;
    let start = Instant::now();
    let again = engine.eclipse_with(&narrow, Algorithm::IndexQuadtree)?;
    println!(
        "re-querying the cached quadtree index with a narrower box: {:?} for {} points",
        start.elapsed(),
        again.len()
    );
    Ok(())
}
