//! Quickstart: the paper's running example end to end.
//!
//! Four hotels with (distance, price) attributes; we ask for 1NN, skyline and
//! eclipse results and show how the eclipse ratio range interpolates between
//! the two classic operators.
//!
//! ```text
//! cargo run -p eclipse-examples --bin quickstart
//! ```

use eclipse_core::prefs::{ImportanceLevel, PreferenceSpec};
use eclipse_core::{EclipseEngine, Point, WeightRatioBox};
use eclipse_examples::format_ids;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The dataset of Figures 1–3: (distance in miles, price in $100).
    let hotels = vec![
        Point::new(vec![1.0, 6.0]), // p1
        Point::new(vec![4.0, 4.0]), // p2
        Point::new(vec![6.0, 1.0]), // p3
        Point::new(vec![8.0, 5.0]), // p4
    ];
    let engine = EclipseEngine::new(hotels)?;

    println!("Hotel dataset: p1=(1,6)  p2=(4,4)  p3=(6,1)  p4=(8,5)");
    println!("(distance in miles, price in $100; smaller is better)\n");

    // --- 1NN: distance is twice as important as price (Figure 1). ---------
    let nn = engine.nn(&[2.0])?.expect("non-empty dataset");
    println!(
        "1NN  (w = <2,1>)          -> p{} with score {}",
        nn.index + 1,
        nn.score
    );

    // --- Skyline: no preference at all (Figure 2). -------------------------
    let skyline = engine.skyline();
    println!("Skyline                   -> {}", format_ids(&skyline));

    // --- Eclipse: a *rough* preference, r ∈ [1/4, 2] (Figure 3). -----------
    let ratio_box = WeightRatioBox::uniform(2, 0.25, 2.0)?;
    let eclipse = engine.eclipse(&ratio_box)?;
    println!("Eclipse (r ∈ [1/4, 2])    -> {}", format_ids(&eclipse));

    // --- Eclipse instantiates both classic operators. ----------------------
    let as_nn = engine.eclipse(&WeightRatioBox::exact(&[2.0])?)?;
    let as_skyline = engine.eclipse(&WeightRatioBox::skyline(2)?)?;
    println!(
        "Eclipse (r ∈ [2, 2])      -> {}   (the 1NN winner)",
        format_ids(&as_nn)
    );
    println!(
        "Eclipse (r ∈ [0, +inf))   -> {}   (exactly the skyline)",
        format_ids(&as_skyline)
    );

    // --- Categorical preference: "price is more important than distance". --
    let pref = PreferenceSpec::Categorical(vec![ImportanceLevel::Unimportant]);
    let students = engine.eclipse_with_preference(&pref)?;
    println!(
        "Eclipse (distance 'unimportant' vs price) -> {}",
        format_ids(&students)
    );

    // --- Relationship report (Table I / Figure 4). --------------------------
    let report = engine.relations(&ratio_box)?;
    println!("\nRelationships for r ∈ [1/4, 2]:");
    println!("  convex hull query : {}", format_ids(&report.convex_hull));
    println!(
        "  eclipse \\ hull    : {}",
        format_ids(&report.eclipse_only())
    );
    println!(
        "  eclipse ⊆ skyline : {}",
        report.eclipse_subset_of_skyline()
    );

    // --- Explanation: which preference in [1/4, 2] picks which hotel? -------
    let intervals = eclipse_core::explain::winner_intervals_2d(&engine.points(), &ratio_box)?;
    println!("\nWho wins where (1NN winner per ratio sub-interval):");
    for iv in intervals {
        println!(
            "  r ∈ [{:.3}, {:.3}]  ->  p{}",
            iv.from_ratio,
            iv.to_ratio,
            iv.winner + 1
        );
    }
    Ok(())
}
