//! Hotel recommendation for a conference — the paper's motivating scenario at
//! a realistic scale.
//!
//! A conference organizer has to shortlist hotels for hundreds of
//! participants whose exact preferences are unknown, but who fall into rough
//! groups (students: price matters more; speakers: distance matters more;
//! everyone else: balanced).  The example generates a synthetic city of
//! hotels, then answers one eclipse query per group and compares the
//! shortlist sizes with plain skyline and plain top-k.
//!
//! ```text
//! cargo run -p eclipse-examples --bin hotel_recommendation
//! ```

use rand::{Rng, SeedableRng};

use eclipse_core::prefs::{ImportanceLevel, PreferenceSpec};
use eclipse_core::{EclipseEngine, Point};

struct Hotel {
    name: String,
    distance_miles: f64,
    price_per_night: f64,
    review_penalty: f64, // 5.0 - average rating, so smaller is better
}

fn synthesize_city(n: usize, seed: u64) -> Vec<Hotel> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            // Hotels closer to the venue tend to be pricier.
            let distance: f64 = rng.gen_range(0.2..12.0);
            let base_price: f64 = 260.0 - 14.0 * distance;
            let price: f64 = (base_price + rng.gen_range(-40.0..60.0)).max(45.0);
            let rating: f64 = rng.gen_range(2.8..5.0);
            Hotel {
                name: format!("Hotel #{i:03}"),
                distance_miles: distance,
                price_per_night: price,
                review_penalty: 5.0 - rating,
            }
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let hotels = synthesize_city(400, 7);
    let points: Vec<Point> = hotels
        .iter()
        .map(|h| {
            Point::new(vec![
                h.distance_miles,
                h.price_per_night / 100.0,
                h.review_penalty,
            ])
        })
        .collect();
    let engine = EclipseEngine::new(points)?;

    println!(
        "{} candidate hotels, attributes = (distance, price/$100, review penalty)\n",
        hotels.len()
    );

    // Baseline operators for comparison.
    let skyline = engine.skyline();
    let top5 = engine.knn(&[1.0, 1.0], 5)?;
    println!("skyline shortlist              : {} hotels", skyline.len());
    println!("top-5 for one exact preference : 5 hotels (but only for w = <1,1,1>)\n");

    // Group-specific eclipse queries expressed as categorical preferences
    // relative to the review-penalty attribute.
    let groups: [(&str, PreferenceSpec); 3] = [
        (
            "students (price matters most)",
            PreferenceSpec::Categorical(vec![
                ImportanceLevel::Unimportant,   // distance vs reviews
                ImportanceLevel::VeryImportant, // price vs reviews
            ]),
        ),
        (
            "speakers (distance matters most)",
            PreferenceSpec::Categorical(vec![
                ImportanceLevel::VeryImportant,
                ImportanceLevel::Similar,
            ]),
        ),
        (
            "general attendees (balanced)",
            PreferenceSpec::Categorical(vec![ImportanceLevel::Similar, ImportanceLevel::Similar]),
        ),
    ];

    for (label, pref) in groups {
        let shortlist = engine.eclipse_with_preference(&pref)?;
        println!("eclipse shortlist for {label}: {} hotels", shortlist.len());
        for idx in shortlist.iter().take(5) {
            let h = &hotels[*idx];
            println!(
                "    {:<11} {:>4.1} mi  ${:>6.0}/night  rating {:.1}",
                h.name,
                h.distance_miles,
                h.price_per_night,
                5.0 - h.review_penalty
            );
        }
        if shortlist.len() > 5 {
            println!("    … and {} more", shortlist.len() - 5);
        }
        println!();
    }

    // Sanity: every eclipse shortlist is contained in the skyline shortlist.
    let skyline_set: std::collections::HashSet<usize> = skyline.into_iter().collect();
    let balanced = engine.eclipse_with_preference(&PreferenceSpec::Categorical(vec![
        ImportanceLevel::Similar,
        ImportanceLevel::Similar,
    ]))?;
    assert!(balanced.iter().all(|i| skyline_set.contains(i)));
    println!("(check) the balanced eclipse shortlist is a subset of the skyline shortlist ✓");
    println!(
        "(check) the exact-preference top-1 hotel {} is in the balanced shortlist: {}",
        hotels[top5[0].index].name,
        balanced.contains(&top5[0].index)
    );
    Ok(())
}
