//! Helper library for the runnable examples (kept intentionally tiny —
//! everything interesting lives in the example binaries themselves).

#![deny(rustdoc::broken_intra_doc_links)]

/// Formats a slice of point indices as a compact `{p1, p2, …}` string using
/// one-based ids, matching the notation of the paper's running example.
pub fn format_ids(ids: &[usize]) -> String {
    let inner: Vec<String> = ids.iter().map(|i| format!("p{}", i + 1)).collect();
    format!("{{{}}}", inner.join(", "))
}

#[cfg(test)]
mod tests {
    #[test]
    fn format_ids_is_one_based() {
        assert_eq!(super::format_ids(&[0, 2]), "{p1, p3}");
        assert_eq!(super::format_ids(&[]), "{}");
    }
}
