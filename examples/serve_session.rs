//! A complete eclipse-serve client session, in-process: spin up the server
//! on an ephemeral port, register the paper's hotel example plus a larger
//! synthetic dataset, and drive query/count batches and stats over the wire.
//!
//! ```text
//! cargo run --release -p eclipse-examples --example serve_session
//! ```

use eclipse_core::exec::ExecutionContext;
use eclipse_core::{Point, WeightRatioBox};
use eclipse_data::synthetic::{Distribution, SyntheticConfig};
use eclipse_examples::format_ids;
use eclipse_serve::client::Client;
use eclipse_serve::protocol::IndexKind;
use eclipse_serve::server::Server;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let server = Server::bind("127.0.0.1:0", ExecutionContext::default())?;
    let handle = server.spawn()?;
    println!("server listening on {}", handle.addr());

    let mut client = Client::connect(handle.addr())?;
    client.ping()?;

    // The paper's running example (Figure 3), served over TCP.
    let hotels = vec![
        Point::new(vec![1.0, 6.0]), // p1
        Point::new(vec![4.0, 4.0]), // p2
        Point::new(vec![6.0, 1.0]), // p3
        Point::new(vec![8.0, 5.0]), // p4
    ];
    let summary = client.load_dataset("hotels", &hotels, IndexKind::Quadtree)?;
    println!(
        "loaded \"hotels\": {} points, d = {}, skyline {}, {} intersections (index warm)",
        summary.points, summary.dim, summary.skyline_len, summary.intersections
    );
    let boxes = [
        WeightRatioBox::uniform(2, 0.25, 2.0)?, // the Figure-3 eclipse query
        WeightRatioBox::exact(&[2.0])?,         // the 1NN instantiation
    ];
    let results = client.query_batch("hotels", &boxes)?;
    println!("eclipse(r ∈ [1/4, 2]) = {}", format_ids(&results[0]));
    println!("1NN(r = 2)           = {}", format_ids(&results[1]));

    // A bigger dataset: batched queries and count-only probes.
    let inde = SyntheticConfig::new(5_000, 3, Distribution::Independent, 42).generate();
    let summary = client.load_dataset("inde", &inde, IndexKind::CuttingTree)?;
    println!(
        "loaded \"inde\": {} points, d = {}, skyline {}, {} intersections",
        summary.points, summary.dim, summary.skyline_len, summary.intersections
    );
    let sweep: Vec<WeightRatioBox> = [(0.18, 5.67), (0.36, 2.75), (0.58, 1.73), (0.84, 1.19)]
        .iter()
        .map(|&(lo, hi)| WeightRatioBox::uniform(3, lo, hi))
        .collect::<Result<_, _>>()?;
    let counts = client.count_batch("inde", &sweep)?;
    for (b, count) in sweep.iter().zip(&counts) {
        println!("|eclipse({b})| = {count}");
    }

    let report = client.stats()?;
    println!(
        "server stats: {} query batches, {} count batches, {} probes, {} errors, {} datasets",
        report.query_batches,
        report.count_batches,
        report.probes,
        report.errors,
        report.datasets.len()
    );
    handle.shutdown();
    Ok(())
}
