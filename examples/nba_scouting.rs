//! NBA scouting with eclipse queries — the paper's real-data scenario on the
//! synthetic league that stands in for the 2015 stats.nba.com snapshot.
//!
//! A scout wants "all-around great players", but different front offices
//! weigh scoring versus the defensive counters differently.  Instead of one
//! arbitrary weight vector (kNN) or an unmanageable skyline, the scout runs
//! eclipse queries with progressively narrower ratio ranges and watches the
//! candidate pool shrink.
//!
//! ```text
//! cargo run -p eclipse-examples --bin nba_scouting
//! ```

use eclipse_core::index::IntersectionIndexKind;
use eclipse_core::{EclipseEngine, WeightRatioBox};
use eclipse_data::nba::{generate_players, points_from_players, NBA_ATTRIBUTES};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let players = generate_players(2015);
    let d = 3; // PTS, REB, AST — the first three attributes, as in the paper's d = 3 default
    let points = points_from_players(&players, d);
    let engine = EclipseEngine::new(points)?;

    println!(
        "Synthetic league: {} players, attributes = {:?}",
        players.len(),
        &NBA_ATTRIBUTES[..d]
    );

    // Build the quadtree index once: the scout will issue many queries.
    let index = engine.build_index(IntersectionIndexKind::Quadtree)?;
    println!(
        "index: {} skyline players, {} intersection hyperplanes, depth {}\n",
        index.skyline_len(),
        index.num_intersections(),
        index.backend_depth()
    );

    let skyline = engine.skyline();
    println!(
        "skyline (all possible favourites under any monotone scoring): {} players",
        skyline.len()
    );

    // Progressively narrower preference bands (Table IV's ratio ranges).
    for (label, lo, hi) in [
        ("very rough preference   r ∈ [0.18, 5.67]", 0.18, 5.67),
        ("rough preference        r ∈ [0.36, 2.75]", 0.36, 2.75),
        ("narrow preference       r ∈ [0.58, 1.73]", 0.58, 1.73),
        ("almost exact preference r ∈ [0.84, 1.19]", 0.84, 1.19),
    ] {
        let b = WeightRatioBox::uniform(d, lo, hi)?;
        let shortlist = engine.eclipse(&b)?;
        let names: Vec<&str> = shortlist
            .iter()
            .take(6)
            .map(|&i| players[i].name.as_str())
            .collect();
        println!(
            "{label}: {:>3} players  e.g. {}",
            shortlist.len(),
            names.join(", ")
        );
    }

    // Result-budget mode: "give me at most 8 candidates and tell me how much
    // preference slack that budget buys" (k-eclipse, DESIGN.md §2 item 22).
    let budgeted = engine.eclipse_top_k(&[1.0, 1.0], 8)?;
    println!(
        "\nbudget of 8 around r = <1,1>: {} players within relaxation margin ±{:.0}% ({})",
        budgeted.indices.len(),
        budgeted.margin.unwrap_or(0.0) * 100.0,
        budgeted.ratio_box
    );

    // An exact weight vector for comparison (classic kNN).
    let top3 = engine.knn(&[1.0, 1.0], 3)?;
    println!("\nkNN top-3 for the exact weights <1, 1, 1>:");
    for n in top3 {
        let p = &players[n.index];
        println!(
            "    {:<12} PTS {:>6.0}  REB {:>6.0}  AST {:>6.0}",
            p.name, p.points, p.rebounds, p.assists
        );
    }

    // The narrower the band, the smaller the shortlist — and every shortlist
    // stays inside the skyline.
    let narrow = engine.eclipse(&WeightRatioBox::uniform(d, 0.84, 1.19)?)?;
    let wide = engine.eclipse(&WeightRatioBox::uniform(d, 0.18, 5.67)?)?;
    assert!(narrow.len() <= wide.len());
    assert!(wide.len() <= skyline.len());
    println!("\n(check) narrow ⊆ wide ⊆ skyline candidate pools ✓");
    Ok(())
}
